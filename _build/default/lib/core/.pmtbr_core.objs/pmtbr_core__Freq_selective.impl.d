lib/core/freq_selective.ml: List Pmtbr Sampling
