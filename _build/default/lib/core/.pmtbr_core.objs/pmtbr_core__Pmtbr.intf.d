lib/core/pmtbr.mli: Dss Mat Pmtbr_la Pmtbr_lti Sampling
