lib/core/sampling.ml: Array Complex Float List Pmtbr_signal Quad
