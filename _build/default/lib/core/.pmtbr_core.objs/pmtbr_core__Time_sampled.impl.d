lib/core/time_sampled.ml: Array Dss Float Mat Pmtbr Pmtbr_la Pmtbr_lti Svd Tdsim
