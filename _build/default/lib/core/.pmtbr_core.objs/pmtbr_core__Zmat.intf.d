lib/core/zmat.mli: Complex Dss Mat Pmtbr_la Pmtbr_lti Sampling
