lib/core/freq_selective.mli: Pmtbr Pmtbr_lti Sampling
