lib/core/pmtbr.ml: Array Dss Float Mat Pmtbr_la Pmtbr_lti Qr Sampling Svd Zmat
