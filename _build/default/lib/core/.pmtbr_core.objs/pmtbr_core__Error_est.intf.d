lib/core/error_est.mli:
