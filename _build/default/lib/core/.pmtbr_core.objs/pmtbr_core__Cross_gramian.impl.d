lib/core/cross_gramian.ml: Array Complex Cschur Cvec Dss Float Mat Pmtbr_la Pmtbr_lti Qr Sampling Vec Zmat
