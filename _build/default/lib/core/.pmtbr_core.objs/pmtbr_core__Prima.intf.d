lib/core/prima.mli: Dss Mat Pmtbr_la Pmtbr_lti
