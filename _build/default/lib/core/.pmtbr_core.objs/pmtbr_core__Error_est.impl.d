lib/core/error_est.ml: Array Float
