lib/core/time_sampled.mli: Dss Mat Pmtbr_la Pmtbr_lti
