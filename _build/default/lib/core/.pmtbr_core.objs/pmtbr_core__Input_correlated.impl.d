lib/core/input_correlated.ml: Array Correlation Dss List Mat Pmtbr Pmtbr_la Pmtbr_lti Pmtbr_signal Rng Sampling Vec Zmat
