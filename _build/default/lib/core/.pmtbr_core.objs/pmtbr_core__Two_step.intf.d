lib/core/two_step.mli: Pmtbr_lti
