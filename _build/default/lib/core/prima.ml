(* PRIMA (Odabasioglu-Celik-Pileggi): block-Arnoldi moment matching about a
   single expansion point s0, followed by congruence projection, which
   preserves passivity for RLC-structured systems.  This is the
   moment-matching baseline of the paper's Fig. 7: the model order grows in
   steps of the port count, one block per matched moment. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  moments : int; (* block moments matched *)
}

(* Orthogonalise [block] against the columns of [prev] (twice, for
   stability), then orthonormalise internally; drops negligible columns. *)
let orthogonalize_block ~(prev : Mat.t option) (block : Mat.t) =
  let deflate b =
    match prev with
    | None -> b
    | Some p ->
        let coeffs = Mat.mul (Mat.transpose p) b in
        Mat.sub b (Mat.mul p coeffs)
  in
  Qr.orth ~tol:1e-10 (deflate (deflate block))

(* [reduce sys ~s0 ~moments] matches [moments] block moments at expansion
   point s0 (rad/s, real positive).  The reduced order is at most
   moments * inputs. *)
let reduce sys ~(s0 : float) ~moments =
  assert (moments >= 1 && s0 > 0.0);
  let f = Dss.factor_shifted sys { Complex.re = s0; im = 0.0 } in
  let real_solve (rhs : Mat.t) =
    let cols = Dss.solve_factored f rhs in
    Mat.init rhs.Mat.rows (Array.length cols) (fun i j -> cols.(j).(i).Complex.re)
  in
  let r0 = real_solve (Dss.b_matrix sys) in
  let q0 = Qr.orth ~tol:1e-10 r0 in
  let rec build blocks last k =
    if k >= moments then blocks
    else begin
      let prev = List.fold_left Mat.hcat (List.hd blocks) (List.tl blocks) in
      (* next block: (s0 E - A)^{-1} E * last *)
      let next = real_solve (Dss.apply_e sys last) in
      let q = orthogonalize_block ~prev:(Some prev) next in
      if q.Mat.cols = 0 then blocks else build (blocks @ [ q ]) q (k + 1)
    end
  in
  let blocks = build [ q0 ] q0 1 in
  let basis = List.fold_left Mat.hcat (List.hd blocks) (List.tl blocks) in
  { rom = Dss.project_congruence sys basis; basis; moments }

(* Reduce to (approximately) a target order by matching enough blocks and
   truncating the basis to the first [order] columns. *)
let reduce_to_order sys ~s0 ~order =
  let p = Dss.inputs sys in
  let moments = max 1 ((order + p - 1) / p) in
  let r = reduce sys ~s0 ~moments in
  if r.basis.Mat.cols <= order then r
  else
    let basis = Mat.sub_cols r.basis 0 order in
    { rom = Dss.project_congruence sys basis; basis; moments }
