(** Two-step Krylov + TBR reduction (the hybrid scheme of the paper's
    references [5], [13]): PRIMA to an intermediate order, then exact dense
    TBR to the final size.  PMTBR subsumes this pipeline in one pass; the
    module exists as a measurable baseline. *)

type result = {
  rom : Pmtbr_lti.Dss.t;
  intermediate_order : int;  (** order after the Krylov stage *)
  hsv : float array;  (** Hankel singular values of the intermediate model *)
}

val reduce : Pmtbr_lti.Dss.t -> s0:float -> intermediate:int -> ?order:int -> ?tol:float ->
  unit -> result
(** Run PRIMA to [intermediate] states at expansion point [s0], then
    balanced truncation with the given [order] or Glover [tol]. *)
