(* Singular-value-based error estimation (paper Section V-B): the trailing
   singular values of ZW estimate the error of the order-q reduced model the
   way truncated Hankel singular values bound the TBR error. *)

(* TBR-style estimate for truncation at order q: 2 * sum of the tail. *)
let tail_bound (sigma : float array) q =
  let acc = ref 0.0 in
  Array.iteri (fun i s -> if i >= q then acc := !acc +. s) sigma;
  2.0 *. !acc

(* Estimates for all orders 0..n. *)
let curve (sigma : float array) = Array.init (Array.length sigma + 1) (tail_bound sigma)

(* Normalised estimate: tail relative to sigma_0 (the "normalized error
   estimate" plotted in Fig. 16). *)
let normalized_curve (sigma : float array) =
  let smax = if Array.length sigma = 0 then 1.0 else Float.max sigma.(0) 1e-300 in
  Array.map (fun e -> e /. (2.0 *. smax)) (curve sigma)

(* Order needed to push the normalised estimate below [tol]. *)
let order_for (sigma : float array) ~tol =
  let curve = normalized_curve sigma in
  let n = Array.length curve in
  let rec search q = if q >= n then n - 1 else if curve.(q) <= tol then q else search (q + 1) in
  search 0
