(* Time-domain sampled Gramian reduction (proper orthogonal decomposition,
   POD).  The paper's statistical interpretation (Section IV-A) views the
   Gramian as the covariance of the state under the assumed input process;
   here the covariance is estimated from state snapshots of an actual
   training simulation instead of from frequency samples.  This is the
   time-domain twin of PMTBR: the same SVD-and-project machinery, with the
   sample matrix drawn from x(t_k) rather than (s_k E - A)^{-1} B, and the
   input correlation captured implicitly by simulating the training
   inputs. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  singular_values : float array; (* of the weighted snapshot matrix *)
  snapshots : int;
}

(* [reduce sys ~u ~t1 ~dt ~snapshots] simulates from rest with the training
   input [u] over [0, t1], keeps [snapshots] equispaced state snapshots,
   and projects onto their dominant left singular subspace. *)
let reduce ?order ?tol sys ~(u : float -> float array) ~t1 ~dt ~snapshots =
  assert (snapshots >= 2);
  let res = Tdsim.simulate ~keep_states:true sys ~t0:0.0 ~t1 ~dt ~u in
  let states =
    match res.Tdsim.states with
    | Some s -> s
    | None -> assert false
  in
  let steps = Array.length res.Tdsim.times in
  let stride = max 1 (steps / snapshots) in
  let cols = ref [] in
  let k = ref (steps - 1) in
  while !k >= 0 do
    cols := Mat.col states !k :: !cols;
    k := !k - stride
  done;
  let cols = Array.of_list !cols in
  let n = Dss.order sys in
  (* snapshot matrix weighted by sqrt(dt_snapshot): a quadrature view of
     the empirical covariance integral *)
  let w = sqrt (dt *. float_of_int stride) in
  let x = Mat.init n (Array.length cols) (fun i j -> w *. cols.(j).(i)) in
  let { Svd.u = uu; sigma; _ } = Svd.decompose x in
  let q = Pmtbr.choose_order ~sigma ?order ?tol () in
  let q =
    let smax = Float.max sigma.(0) 1e-300 in
    let rec cap k = if k <= 1 then 1 else if sigma.(k - 1) > 1e-14 *. smax then k else cap (k - 1) in
    cap q
  in
  let basis = Mat.sub_cols uu 0 q in
  {
    rom = Dss.project_congruence sys basis;
    basis;
    singular_values = sigma;
    snapshots = Array.length cols;
  }
