(* Two-step Krylov + TBR reduction (the hybrid scheme of the paper's
   references [5], [13], used as the point of comparison in Section VI-B):
   a cheap moment-matching projection brings the model to an intermediate
   order for which dense balanced truncation is affordable, then exact TBR
   compresses it to the final size.

   PMTBR subsumes this pipeline in one pass; the module exists as a
   baseline so the claim can be measured. *)

open Pmtbr_lti

type result = {
  rom : Dss.t;
  intermediate_order : int; (* order after the Krylov stage *)
  hsv : float array; (* Hankel singular values of the intermediate model *)
}

(* [reduce sys ~s0 ~intermediate ~order] runs PRIMA to [intermediate]
   states (congruence, passivity-friendly), then TBR down to [order]. *)
let reduce sys ~s0 ~intermediate ?order ?tol () =
  let stage1 = Prima.reduce_to_order sys ~s0 ~order:intermediate in
  let mid = stage1.Prima.rom in
  let t = Tbr.reduce_dss ?order ?tol mid in
  { rom = t.Tbr.rom; intermediate_order = Dss.order mid; hsv = t.Tbr.hsv }
