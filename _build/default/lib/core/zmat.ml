(* Assembly of the weighted, realified sample matrix Z W.

   Each frequency point s_k contributes the columns of
   sqrt(w_k) * (s_k E - A)^{-1} B.  Complex samples at +j w also stand for
   their conjugates at -j w (step 5 of Algorithm 1); since
   span{z, z*} = span{Re z, Im z} over the reals, we store the real and
   imaginary parts as two real columns instead.  Points with (numerically)
   zero imaginary part contribute only their real columns. *)

open Pmtbr_la
open Pmtbr_lti

(* Real column block for one sample point. *)
let realify_block ~(weight : float) (cols : Complex.t array array) ~(is_real : bool) =
  let p = Array.length cols in
  assert (p > 0);
  let n = Array.length cols.(0) in
  let w = sqrt (Float.max 0.0 weight) in
  if is_real then Mat.init n p (fun i j -> w *. cols.(j).(i).Complex.re)
  else
    (* conjugate pair weight: both half-axes contribute, fold the factor 2
       into the weight (the constant scaling is irrelevant to the subspace
       and uniform across columns) *)
    Mat.init n (2 * p) (fun i j ->
        let z = cols.(j / 2).(i) in
        w *. (if j mod 2 = 0 then z.Complex.re else z.Complex.im))

let is_effectively_real (s : Complex.t) =
  Float.abs s.Complex.im <= 1e-300 +. (1e-12 *. Float.abs s.Complex.re)

(* Columns for one point: solve (sE - A) Z = R. *)
let point_block sys ~(rhs : Mat.t) (p : Sampling.point) =
  let cols = Dss.shifted_solve_rhs sys p.Sampling.s rhs in
  realify_block ~weight:p.Sampling.weight cols ~is_real:(is_effectively_real p.Sampling.s)

(* Full ZW matrix for a point set, with B as the right-hand side. *)
let build sys (pts : Sampling.point array) =
  let rhs = Dss.b_matrix sys in
  let blocks = Array.map (point_block sys ~rhs) pts in
  match Array.to_list blocks with
  | [] -> invalid_arg "Zmat.build: no sample points"
  | first :: rest -> List.fold_left Mat.hcat first rest

(* Same, but with an arbitrary right-hand side per point (used by the
   input-correlated variant where each point gets its own input draw). *)
let build_per_point sys (pts_rhs : (Sampling.point * Mat.t) list) =
  let blocks = List.map (fun (p, rhs) -> point_block sys ~rhs p) pts_rhs in
  match blocks with
  | [] -> invalid_arg "Zmat.build_per_point: no sample points"
  | first :: rest -> List.fold_left Mat.hcat first rest

(* Observability-side samples (sE - A)^{-H} C^T for the cross-Gramian
   method. *)
let point_block_hermitian sys ~(rhs : Mat.t) (p : Sampling.point) =
  let cols = Dss.shifted_solve_hermitian sys p.Sampling.s rhs in
  realify_block ~weight:p.Sampling.weight cols ~is_real:(is_effectively_real p.Sampling.s)

let build_left sys (pts : Sampling.point array) =
  let rhs = Mat.transpose (Dss.c_matrix sys) in
  let blocks = Array.map (point_block_hermitian sys ~rhs) pts in
  match Array.to_list blocks with
  | [] -> invalid_arg "Zmat.build_left: no sample points"
  | first :: rest -> List.fold_left Mat.hcat first rest
