(** Modified nodal analysis: stamp a netlist into descriptor state-space
    form

    {v
      E dx/dt = A x + B u,   y = C x
    v}

    with [x = [node voltages; inductor currents]], [u] the port injection
    currents and [y] the port node voltages.  For RC networks this yields
    the paper's symmetric case: [A = A^T] negative semidefinite and
    [C = B^T]. *)

type system = {
  e : Pmtbr_sparse.Triplet.t;  (** n x n, capacitance/inductance stamp *)
  a : Pmtbr_sparse.Triplet.t;  (** n x n, conductance/incidence stamp *)
  b : Pmtbr_la.Mat.t;  (** n x p input map *)
  c : Pmtbr_la.Mat.t;  (** p x n output map (= [b^T] here) *)
  n : int;  (** state count = nodes + inductors *)
  nodes : int;
  inductors : int;
}

val stamp : Netlist.t -> system
(** Stamp a netlist.  Ground (node 0) is eliminated; the port matrices are
    built from the declared ports in order. *)
