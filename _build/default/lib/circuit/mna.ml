(* Modified nodal analysis: stamp a netlist into descriptor state-space form

     E dx/dt = A x + B u,   y = C x

   with x = [v_1 .. v_N; i_L1 .. i_LM] (node voltages, inductor currents),
   u the port injection currents and y the port node voltages.

     E = [ Ccap  0 ]      A = [ -G   -M  ]     B = [ Bu ]    C = Bu^T
         [ 0     L ]          [ M^T   0  ]         [ 0  ]

   For RC networks this gives the paper's symmetric case: A = A^T (= -G,
   negative semidefinite) and C = B^T. *)

open Pmtbr_la
open Pmtbr_sparse

type system = {
  e : Triplet.t; (* n x n *)
  a : Triplet.t; (* n x n *)
  b : Mat.t; (* n x p *)
  c : Mat.t; (* p x n *)
  n : int; (* state count = nodes + inductors *)
  nodes : int;
  inductors : int;
}

let stamp (nl : Netlist.t) =
  let nodes = Netlist.node_count nl in
  let nind = Netlist.inductor_count nl in
  let n = nodes + nind in
  let e = Triplet.create n n in
  let a = Triplet.create n n in
  (* node index n (1-based, ground = 0) -> state index n-1 *)
  let idx nd = nd - 1 in
  let lidx l = nodes + l in
  (* conductance stamp between two nodes (either may be ground) *)
  let stamp_g n1 n2 g =
    if n1 > 0 then Triplet.add a (idx n1) (idx n1) (-.g);
    if n2 > 0 then Triplet.add a (idx n2) (idx n2) (-.g);
    if n1 > 0 && n2 > 0 then begin
      Triplet.add a (idx n1) (idx n2) g;
      Triplet.add a (idx n2) (idx n1) g
    end
  in
  let stamp_c n1 n2 cv =
    if n1 > 0 then Triplet.add e (idx n1) (idx n1) cv;
    if n2 > 0 then Triplet.add e (idx n2) (idx n2) cv;
    if n1 > 0 && n2 > 0 then begin
      Triplet.add e (idx n1) (idx n2) (-.cv);
      Triplet.add e (idx n2) (idx n1) (-.cv)
    end
  in
  (* collect self-inductances first for mutual terms *)
  let self = Array.make (max 1 nind) 0.0 in
  let lcount = ref 0 in
  List.iter
    (function
      | Netlist.Inductor { henries; _ } ->
          self.(!lcount) <- henries;
          incr lcount
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Mutual _ -> ())
    (Netlist.elements nl);
  let lcount = ref 0 in
  List.iter
    (function
      | Netlist.Resistor { n1; n2; ohms } -> stamp_g n1 n2 (1.0 /. ohms)
      | Netlist.Capacitor { n1; n2; farads } -> stamp_c n1 n2 farads
      | Netlist.Inductor { n1; n2; henries } ->
          let l = !lcount in
          incr lcount;
          Triplet.add e (lidx l) (lidx l) henries;
          (* KCL: inductor current leaves n1, enters n2 *)
          if n1 > 0 then Triplet.add a (idx n1) (lidx l) (-1.0);
          if n2 > 0 then Triplet.add a (idx n2) (lidx l) 1.0;
          (* branch equation: L di/dt = v_n1 - v_n2 *)
          if n1 > 0 then Triplet.add a (lidx l) (idx n1) 1.0;
          if n2 > 0 then Triplet.add a (lidx l) (idx n2) (-1.0)
      | Netlist.Mutual { l1; l2; coupling } ->
          let m = coupling *. sqrt (self.(l1) *. self.(l2)) in
          Triplet.add e (lidx l1) (lidx l2) m;
          Triplet.add e (lidx l2) (lidx l1) m)
    (Netlist.elements nl);
  let port_nodes = Array.of_list (Netlist.ports nl) in
  let p = Array.length port_nodes in
  let b = Mat.create n p in
  Array.iteri (fun j nd -> Mat.set b (idx nd) j 1.0) port_nodes;
  let c = Mat.transpose b in
  (* make sure both triplets cover the full n x n frame *)
  Triplet.add e (n - 1) (n - 1) 0.0;
  Triplet.add a (n - 1) (n - 1) 0.0;
  ignore (Triplet.dims e);
  { e; a; b; c; n; nodes; inductors = nind }
