(* Balanced binary RC clock-distribution tree (paper Figs. 5-6 use an RC
   clock net).  Each branch is a short RC section whose resistance grows and
   capacitance shrinks with depth, as in a tapered H-tree; leaves carry load
   capacitors.  The single port is the driving point at the root. *)

let generate ?(levels = 7) ?(r_unit = 20.0) ?(c_unit = 5e-14) ?(c_load = 2e-13)
    ?(r_drive = 50.0) () =
  let nl = Netlist.create () in
  let next = ref 1 in
  let fresh () =
    let n = !next in
    incr next;
    n
  in
  let root = fresh () in
  ignore (Netlist.add_port nl root);
  (* driver output resistance to ground models the (linearised) driver *)
  Netlist.add_r nl root 0 r_drive;
  let rec grow parent depth =
    if depth >= levels then Netlist.add_c nl parent 0 c_load
    else begin
      let taper = Float.of_int (depth + 1) in
      let r = r_unit *. taper and c = c_unit /. taper in
      let left = fresh () and right = fresh () in
      Netlist.add_r nl parent left r;
      Netlist.add_c nl left 0 c;
      Netlist.add_r nl parent right (r *. 1.08);
      (* slight asymmetry avoids exactly repeated Hankel singular values *)
      Netlist.add_c nl right 0 (c *. 0.92);
      grow left (depth + 1);
      grow right (depth + 1)
    end
  in
  Netlist.add_c nl root 0 c_unit;
  grow root 0;
  nl

(* Approximate usable bandwidth of the tree (rad/s): inverse of the smallest
   branch time constant; used to pick sampling ranges in the experiments. *)
let bandwidth ?(r_unit = 20.0) ?(c_unit = 5e-14) () = 1.0 /. (r_unit *. c_unit) *. 0.5
