(* On-chip spiral inductor compact model (paper Figs. 7-9).  Each turn
   segment is a series inductance whose resistance is frequency dependent
   because of skin and proximity effect; that dependence is modelled with a
   multi-branch Foster (parallel RL) ladder whose branch time constants are
   spread over several decades - the standard RL-ladder compact-modelling
   technique.  The result is a driving-point impedance whose real part
   R(omega) rises over a wide band: single-point moment matching (PRIMA)
   converges slowly on it, while frequency sampling captures it quickly.
   Substrate capacitance loads every node and neighbouring turns couple
   magnetically.  The far terminal is grounded. *)

let generate ?(segments = 16) ?(l_seg = 0.5e-9) ?(r_dc = 0.6) ?(skin_branches = 4)
    ?(c_sub = 30e-15) ?(coupling = 0.35) () =
  let nl = Netlist.create () in
  let next = ref 1 in
  let fresh () =
    let k = !next in
    incr next;
    k
  in
  let input = fresh () in
  ignore (Netlist.add_port nl input);
  let series_l_ids = ref [] in
  let here = ref input in
  for seg = 0 to segments - 1 do
    let mid = fresh () in
    let out = if seg = segments - 1 then 0 else fresh () in
    (* skin-effect ladder between !here and mid: r_dc in parallel with
       several R-L branches whose time constants span ~3 decades, so the
       effective series resistance climbs from r_dc at DC towards the sum
       of the branch conductance limits at high frequency *)
    Netlist.add_r nl !here mid r_dc;
    for b = 1 to skin_branches do
      let factor = 3.0 ** float_of_int b in
      let rb = r_dc *. factor in
      let lb = l_seg /. (2.0 *. factor ** 0.5) in
      let bridge = fresh () in
      Netlist.add_r nl !here bridge rb;
      ignore (Netlist.add_l nl bridge mid lb)
    done;
    (* main series inductance of the turn *)
    let lid = Netlist.add_l nl mid out l_seg in
    series_l_ids := lid :: !series_l_ids;
    (* substrate loading *)
    Netlist.add_c nl mid 0 c_sub;
    if out <> 0 then Netlist.add_c nl out 0 c_sub;
    here := out
  done;
  (* magnetic coupling between successive turns, decaying with distance *)
  let ids = Array.of_list (List.rev !series_l_ids) in
  for i = 0 to Array.length ids - 1 do
    for j = i + 1 to min (Array.length ids - 1) (i + 3) do
      let k = coupling /. float_of_int (j - i) in
      if Float.abs k > 0.01 then Netlist.add_mutual nl ids.(i) ids.(j) k
    done
  done;
  nl

(* Band over which the paper's experiments sample the spiral (rad/s):
   DC to a little past the self-resonance. *)
let sample_band ?(segments = 16) ?(l_seg = 0.5e-9) ?(c_sub = 30e-15) () =
  let l_tot = float_of_int segments *. l_seg in
  let c_tot = float_of_int segments *. c_sub in
  let w_res = 1.0 /. sqrt (l_tot *. c_tot) in
  2.0 *. w_res
