(* Lumped-element equivalent circuit in the spirit of the PVL paper's PEEC
   example (paper Fig. 10): a lightly damped LC ladder with stagger-tuned
   shunt tanks, producing a transfer function with several sharp resonances
   that moment matching needs high order to capture. *)

let generate ?(cells = 20) ?(l_ser = 1e-9) ?(r_ser = 0.05) ?(c_shunt = 0.4e-12)
    ?(r_shunt = 2000.0) () =
  let nl = Netlist.create () in
  let next = ref 1 in
  let fresh () =
    let k = !next in
    incr next;
    k
  in
  let input = fresh () in
  ignore (Netlist.add_port nl input);
  Netlist.add_c nl input 0 c_shunt;
  Netlist.add_r nl input 0 (r_shunt *. 4.0);
  let here = ref input in
  let prev_l = ref None in
  for cell = 0 to cells - 1 do
    let mid = fresh () and out = fresh () in
    (* stagger-tune the cells slightly so resonances spread out *)
    let detune = 1.0 +. (0.04 *. float_of_int cell) in
    Netlist.add_r nl !here mid (r_ser *. detune);
    let lid = Netlist.add_l nl mid out (l_ser *. detune) in
    (match !prev_l with
    | Some pl -> Netlist.add_mutual nl pl lid 0.2
    | None -> ());
    prev_l := Some lid;
    Netlist.add_c nl out 0 (c_shunt /. detune);
    Netlist.add_r nl out 0 r_shunt;
    here := out
  done;
  (* light resistive termination keeps the resonances sharp but stable *)
  Netlist.add_r nl !here 0 (r_shunt /. 4.0);
  nl

(* Frequency band containing the ladder's resonances (rad/s). *)
let sample_band ?(l_ser = 1e-9) ?(c_shunt = 0.4e-12) () =
  let w0 = 1.0 /. sqrt (l_ser *. c_shunt) in
  3.0 *. w0
