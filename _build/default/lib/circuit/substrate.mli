(** Massively coupled substrate parasitic network (paper Figs. 15-16),
    synthesised as a random geometric graph: contacts scattered in the unit
    square, resistively coupled to their nearest neighbours with
    distance-decaying conductance, every node tied to the grounded
    backplane by a resistor and a capacitor.  All contacts are ports. *)

val generate : ?ports:int -> ?internal:int -> ?neighbours:int -> ?seed:int ->
  ?g_scale:float -> ?g_back:float -> ?c_back:float -> unit -> Netlist.t
(** Build the network; deterministic for a fixed [seed]. *)

val corner_frequency : ?g_back:float -> ?c_back:float -> unit -> float
(** Typical substrate relaxation frequency (rad/s), for sampling ranges. *)
