(** Lossy transmission-line segment model: a cascade of RLGC cells with a
    proper characteristic impedance and delay.  With matched termination
    the response is smooth; mismatched termination shows reflection ripple
    — a good stress test for band-limited reduction. *)

val generate : ?cells:int -> ?l_cell:float -> ?c_cell:float -> ?r_cell:float ->
  ?g_leak:float -> ?r_term:float -> unit -> Netlist.t
(** Build the line; one driving-point port at the near end. *)

val z0 : ?l_cell:float -> ?c_cell:float -> unit -> float
(** Characteristic impedance [sqrt (l/c)] of a cell. *)

val delay : ?cells:int -> ?l_cell:float -> ?c_cell:float -> unit -> float
(** One-way delay of the whole line (seconds). *)

val valid_band : ?l_cell:float -> ?c_cell:float -> unit -> float
(** Band (rad/s) within which the discrete cascade approximates a
    continuous line. *)
