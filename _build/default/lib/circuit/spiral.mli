(** On-chip spiral inductor compact model (paper Figs. 7-9).  Skin and
    proximity effect are modelled with multi-branch Foster RL ladders whose
    time constants span several decades, so the driving-point resistance
    R(omega) climbs over a wide band: single-point moment matching (PRIMA)
    converges slowly on it while frequency sampling captures it quickly. *)

val generate : ?segments:int -> ?l_seg:float -> ?r_dc:float -> ?skin_branches:int ->
  ?c_sub:float -> ?coupling:float -> unit -> Netlist.t
(** Build the spiral; one port at the input terminal, far terminal
    grounded.  Neighbouring turns are magnetically coupled with
    distance-decaying coefficients. *)

val sample_band : ?segments:int -> ?l_seg:float -> ?c_sub:float -> unit -> float
(** Band (rad/s) over which the experiments sample the spiral: DC to a
    little past the self-resonance. *)
