(** Coupled RC bus: parallel signal lines with line-to-line coupling
    capacitance — the canonical digital-interconnect crosstalk structure.
    Multi-port: a current port at the near end of every line, so the model
    captures both driving-point and transfer/crosstalk behaviour. *)

val generate : ?lines:int -> ?sections:int -> ?r:float -> ?c_ground:float ->
  ?c_couple:float -> ?r_term:float -> unit -> Netlist.t
(** Build the bus ([lines * (sections + 1)] nodes). *)

val bandwidth : ?sections:int -> ?r:float -> ?c_ground:float -> ?c_couple:float -> unit -> float
(** Approximate bandwidth (rad/s) of the bus, for sampling ranges. *)
