(** Rectangular RC mesh (paper Figs. 3 and 13): resistor grid with a
    capacitor and a leak resistor to ground at every node. *)

val node : cols:int -> int -> int -> int
(** [node ~cols i j] is the node number of grid position (i, j). *)

val generate : ?rows:int -> ?cols:int -> ?ports:int -> ?r:float -> ?c:float ->
  ?r_leak:float -> ?r_port_term:float -> unit -> Netlist.t
(** Build the mesh with the given number of current-injection ports.  Ports
    are spread over the grid with a fixed low-discrepancy stride, so
    growing the port count keeps earlier port positions stable (needed for
    the nested Fig. 3 sweep).  Defaults: 12x12, 1 port, 100 ohm grid
    resistors, 0.1 pF, 10 kohm leaks at every node.  When [r_port_term] is
    given, the per-node leaks are dropped and the grid is instead grounded
    only through that resistance at each port — the driver-conductance
    termination of an extracted net, which leaves a much richer
    controllable space. *)
