(** Balanced binary RC clock-distribution tree (the clock-net model of
    paper Figs. 5-6).  Branch resistance grows and capacitance shrinks with
    depth as in a tapered H-tree; leaves carry load capacitors; the single
    port is the driving point at the root. *)

val generate : ?levels:int -> ?r_unit:float -> ?c_unit:float -> ?c_load:float ->
  ?r_drive:float -> unit -> Netlist.t
(** Build the tree ([2^(levels+1) - 1] nodes).  A slight left/right
    asymmetry avoids exactly repeated Hankel singular values. *)

val bandwidth : ?r_unit:float -> ?c_unit:float -> unit -> float
(** Approximate usable bandwidth (rad/s), for picking sampling ranges. *)
