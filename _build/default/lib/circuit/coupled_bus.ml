(* Coupled RC bus: parallel signal lines over a common return with
   line-to-line coupling capacitance - the canonical digital-interconnect
   crosstalk structure.  Multi-port (near end of each line drives, so the
   model captures both driving-point and transfer/crosstalk behaviour). *)

(* [generate ~lines ~sections ()] builds [lines] parallel RC lines of
   [sections] segments each, with coupling capacitance [c_couple] between
   vertically adjacent nodes of neighbouring lines.  One current port at
   the near end of every line. *)
let generate ?(lines = 4) ?(sections = 20) ?(r = 25.0) ?(c_ground = 20e-15)
    ?(c_couple = 15e-15) ?(r_term = 200.0) () =
  assert (lines >= 1 && sections >= 1);
  let nl = Netlist.create () in
  (* node numbering: line i, tap j (0..sections) -> 1 + i*(sections+1) + j *)
  let node i j = 1 + (i * (sections + 1)) + j in
  for i = 0 to lines - 1 do
    ignore (Netlist.add_port nl (node i 0));
    for j = 0 to sections do
      Netlist.add_c nl (node i j) 0 c_ground;
      if j < sections then Netlist.add_r nl (node i j) (node i (j + 1)) r
    done;
    Netlist.add_r nl (node i sections) 0 r_term
  done;
  for i = 0 to lines - 2 do
    for j = 0 to sections do
      Netlist.add_c nl (node i j) (node (i + 1) j) c_couple
    done
  done;
  nl

(* Dominant bandwidth of the bus (rad/s). *)
let bandwidth ?(sections = 20) ?(r = 25.0) ?(c_ground = 20e-15) ?(c_couple = 15e-15) () =
  let c_total = float_of_int (sections + 1) *. (c_ground +. c_couple) in
  let r_total = float_of_int sections *. r in
  4.0 /. (r_total *. c_total)
