(* Rectangular RC mesh (paper Figs. 3 and 13): resistor grid with a
   capacitor and a leak resistor to ground at every node.  Ports are chosen
   to cover the grid evenly, so growing the port count keeps earlier port
   positions stable. *)

(* Node numbering: grid position (i, j) -> node 1 + i*cols + j. *)
let node ~cols i j = 1 + (i * cols) + j

(* [generate ~rows ~cols ~ports ()] builds the mesh with the given number of
   current-injection ports. *)
let generate ?(rows = 12) ?(cols = 12) ?(ports = 1) ?(r = 100.0) ?(c = 1e-13)
    ?(r_leak = 10_000.0) ?r_port_term () =
  assert (ports >= 1 && ports <= rows * cols);
  let nl = Netlist.create () in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let nd = node ~cols i j in
      Netlist.add_c nl nd 0 c;
      (* with port terminations the grid is grounded only through the
         drivers, as in an extracted net; otherwise every node leaks *)
      if r_port_term = None then Netlist.add_r nl nd 0 r_leak;
      if j + 1 < cols then Netlist.add_r nl nd (node ~cols i (j + 1)) r;
      if i + 1 < rows then Netlist.add_r nl nd (node ~cols (i + 1) j) r
    done
  done;
  (* spread the ports over the grid with a low-discrepancy stride *)
  let total = rows * cols in
  let stride =
    (* golden-ratio stride, coprime-ish with total *)
    let s = int_of_float (0.618 *. float_of_int total) in
    let rec coprime s = if s <= 1 then 1 else if gcd s total = 1 then s else coprime (s - 1)
    and gcd a b = if b = 0 then a else gcd b (a mod b) in
    coprime s
  in
  for k = 0 to ports - 1 do
    let cell = 1 + (k * stride mod total) in
    ignore (Netlist.add_port nl cell);
    match r_port_term with
    | Some rt -> Netlist.add_r nl cell 0 rt
    | None -> ()
  done;
  nl
