(** Reader/writer for a SPICE-like netlist dialect, so that externally
    extracted parasitic networks can be fed to the reduction algorithms.

    Supported cards (case-insensitive, ['*'] comments):
    [Rname n1 n2 value], [Cname n1 n2 value], [Lname n1 n2 value],
    [Kname Lname1 Lname2 k], [.port node], [.end].  Node ["0"] or ["gnd"]
    is ground; any other token is a named node.  Values accept the usual SI
    suffixes (f p n u m k meg g t). *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_value : line:int -> string -> float
(** Parse one numeric field with optional SI suffix.
    @raise Parse_error on malformed input. *)

type t
(** A parsed netlist together with its node-name table. *)

val parse_string : string -> t
(** Parse a netlist from text.
    @raise Parse_error on the first malformed card. *)

val parse_file : string -> t
(** Parse a netlist file. *)

val netlist : t -> Netlist.t
(** The stamped-ready netlist. *)

val node_name : t -> int -> string
(** Original name of an internal node number (ground is ["0"]). *)

val to_string : Netlist.t -> string
(** Render a netlist in the dialect above (integer node names). *)

val write_file : string -> Netlist.t -> unit
(** [to_string] to a file. *)
