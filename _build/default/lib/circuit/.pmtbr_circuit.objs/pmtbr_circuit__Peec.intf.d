lib/circuit/peec.mli: Netlist
