lib/circuit/substrate.ml: Array Float Hashtbl Netlist Pmtbr_signal Rng
