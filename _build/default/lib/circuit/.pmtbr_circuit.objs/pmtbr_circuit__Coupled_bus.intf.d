lib/circuit/coupled_bus.mli: Netlist
