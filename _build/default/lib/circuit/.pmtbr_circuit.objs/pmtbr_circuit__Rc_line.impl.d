lib/circuit/rc_line.ml: Netlist
