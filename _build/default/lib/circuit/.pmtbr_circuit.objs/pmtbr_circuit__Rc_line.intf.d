lib/circuit/rc_line.mli: Netlist
