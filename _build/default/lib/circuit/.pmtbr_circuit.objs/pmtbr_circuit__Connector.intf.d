lib/circuit/connector.mli: Netlist
