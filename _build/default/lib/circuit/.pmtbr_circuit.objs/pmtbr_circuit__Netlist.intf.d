lib/circuit/netlist.mli:
