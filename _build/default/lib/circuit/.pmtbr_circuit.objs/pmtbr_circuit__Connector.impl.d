lib/circuit/connector.ml: Array Float Netlist
