lib/circuit/tline.ml: Netlist
