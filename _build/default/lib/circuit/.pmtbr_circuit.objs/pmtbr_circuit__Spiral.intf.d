lib/circuit/spiral.mli: Netlist
