lib/circuit/clock_tree.mli: Netlist
