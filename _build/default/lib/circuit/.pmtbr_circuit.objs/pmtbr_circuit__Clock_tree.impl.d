lib/circuit/clock_tree.ml: Float Netlist
