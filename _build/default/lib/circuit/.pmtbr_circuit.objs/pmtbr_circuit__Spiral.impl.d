lib/circuit/spiral.ml: Array Float List Netlist
