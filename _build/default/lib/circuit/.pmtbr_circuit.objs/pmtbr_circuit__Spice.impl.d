lib/circuit/spice.ml: Buffer Char Hashtbl List Netlist Printf String
