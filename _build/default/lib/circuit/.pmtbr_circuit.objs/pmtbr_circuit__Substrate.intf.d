lib/circuit/substrate.mli: Netlist
