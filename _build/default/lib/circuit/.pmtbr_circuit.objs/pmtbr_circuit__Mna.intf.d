lib/circuit/mna.mli: Netlist Pmtbr_la Pmtbr_sparse
