lib/circuit/peec.ml: Netlist
