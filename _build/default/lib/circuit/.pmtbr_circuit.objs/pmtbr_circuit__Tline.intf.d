lib/circuit/tline.mli: Netlist
