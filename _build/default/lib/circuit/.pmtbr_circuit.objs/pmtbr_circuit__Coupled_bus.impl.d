lib/circuit/coupled_bus.ml: Netlist
