lib/circuit/rc_mesh.mli: Netlist
