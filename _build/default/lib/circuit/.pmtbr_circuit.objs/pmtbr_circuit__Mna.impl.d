lib/circuit/mna.ml: Array List Mat Netlist Pmtbr_la Pmtbr_sparse Triplet
