lib/circuit/netlist.ml: Float List
