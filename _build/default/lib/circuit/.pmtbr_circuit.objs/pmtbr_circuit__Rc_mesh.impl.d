lib/circuit/rc_mesh.ml: Netlist
