(** Multi-pin shielded connector model (paper Fig. 11 uses an 18-pin
    connector PEEC model).  Each pin is a lossy LC ladder to the shield,
    with capacitive and magnetic coupling between neighbouring pins.  The
    element values place resonances both below and above 8 GHz, with the
    largest peaks out of band - the configuration in which plain TBR wastes
    its states while band-limited PMTBR does not. *)

val generate : ?pins:int -> ?sections:int -> ?l_sec:float -> ?r_sec:float -> ?c_sec:float ->
  ?c_couple:float -> ?k_couple:float -> ?r_term:float -> unit -> Netlist.t
(** Build the connector; a single driving-point port on pin 1.  Every
    internal node carries some capacitance, so E is invertible and the
    exact-TBR baseline applies. *)

val band_of_interest : float
(** 0 - 8 GHz in rad/s: the paper's band of interest. *)

val plot_band : float
(** 0 - 20 GHz in rad/s: the band over which responses are plotted. *)
