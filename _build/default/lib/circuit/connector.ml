(* Multi-pin shielded connector model (paper Fig. 11 uses an 18-pin
   connector PEEC model).  Each pin is a lossy LC ladder to the shield;
   adjacent pins couple capacitively and magnetically.  The element values
   place the pin resonances between roughly 6 and 20 GHz, so that a plain
   TBR reduction spends effort on large out-of-band peaks while a 0-8 GHz
   frequency-selective PMTBR reduction does not. *)

let generate ?(pins = 18) ?(sections = 4) ?(l_sec = 1.4e-9) ?(r_sec = 0.4)
    ?(c_sec = 0.12e-12) ?(c_couple = 0.05e-12) ?(k_couple = 0.25)
    ?(r_term = 150.0) () =
  let nl = Netlist.create () in
  let next = ref 1 in
  let fresh () =
    let k = !next in
    incr next;
    k
  in
  (* node.(pin).(sec) for sec = 0..sections *)
  let node = Array.init pins (fun _ -> Array.init (sections + 1) (fun _ -> fresh ())) in
  let lind = Array.make_matrix pins sections 0 in
  for p = 0 to pins - 1 do
    (* per-pin length detune spreads the resonances *)
    let detune = 1.0 +. (0.05 *. float_of_int p) in
    for s = 0 to sections - 1 do
      let a = node.(p).(s) and b = node.(p).(s + 1) in
      let mid = fresh () in
      Netlist.add_r nl a mid (r_sec *. detune);
      lind.(p).(s) <- Netlist.add_l nl mid b (l_sec *. detune);
      Netlist.add_c nl a 0 (c_sec /. detune);
      (* small pad capacitance keeps E invertible so the exact-TBR baseline
         of Fig. 11 applies to this model *)
      Netlist.add_c nl mid 0 (c_sec /. 20.0)
    done;
    Netlist.add_c nl node.(p).(sections) 0 (c_sec /. detune);
    (* far-end termination to the shield *)
    Netlist.add_r nl node.(p).(sections) 0 r_term
  done;
  (* neighbour coupling *)
  for p = 0 to pins - 2 do
    for s = 0 to sections - 1 do
      Netlist.add_c nl node.(p).(s + 1) node.(p + 1).(s + 1) c_couple;
      Netlist.add_mutual nl lind.(p).(s) lind.(p + 1).(s) k_couple
    done
  done;
  (* single port: driving point of the first pin *)
  ignore (Netlist.add_port nl node.(0).(0));
  nl

(* 0 - 8 GHz: the paper's band of interest, in rad/s. *)
let band_of_interest = 2.0 *. Float.pi *. 8e9

(* Widest band over which the exact response is plotted (0 - 20 GHz). *)
let plot_band = 2.0 *. Float.pi *. 20e9
