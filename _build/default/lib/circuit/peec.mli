(** Lumped-element equivalent circuit in the spirit of the PVL paper's PEEC
    example (paper Fig. 10): a lightly damped LC ladder with stagger-tuned
    shunt tanks, producing sharp resonances that moment matching needs high
    order to capture.  The E matrix is singular (the internal R-L nodes
    carry no capacitance), which standard TBR cannot handle but PMTBR can
    (paper Section V-A). *)

val generate : ?cells:int -> ?l_ser:float -> ?r_ser:float -> ?c_shunt:float ->
  ?r_shunt:float -> unit -> Netlist.t
(** Build the tank chain; one driving-point port. *)

val sample_band : ?l_ser:float -> ?c_shunt:float -> unit -> float
(** Band (rad/s) containing the ladder's resonances. *)
