(* Massively coupled substrate parasitic network (paper Figs. 15-16):
   boundary-element extractions of substrates yield dense-ish resistive
   coupling among many contacts plus capacitance to the backplane.  We
   synthesise one as a random geometric graph: contacts scattered in the
   unit square, resistively coupled to their nearest neighbours with
   conductance decaying with distance, every node tied to the grounded
   backplane by a resistor and a capacitor.  All contacts are ports. *)

open Pmtbr_signal

let generate ?(ports = 150) ?(internal = 0) ?(neighbours = 5) ?(seed = 42)
    ?(g_scale = 1e-3) ?(g_back = 2e-4) ?(c_back = 50e-15) () =
  let rng = Rng.create seed in
  let n = ports + internal in
  let xs = Array.init n (fun _ -> Rng.float rng) in
  let ys = Array.init n (fun _ -> Rng.float rng) in
  let nl = Netlist.create () in
  let dist i j = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
  (* connect each node to its k nearest neighbours *)
  let connected = Hashtbl.create (n * neighbours) in
  for i = 0 to n - 1 do
    let others = Array.init n (fun j -> j) in
    Array.sort (fun a b -> compare (dist i a) (dist i b)) others;
    let added = ref 0 and k = ref 0 in
    while !added < neighbours && !k < n do
      let j = others.(!k) in
      incr k;
      if j <> i then begin
        let key = (min i j, max i j) in
        if not (Hashtbl.mem connected key) then begin
          Hashtbl.add connected key ();
          let d = Float.max 0.02 (dist i j) in
          (* conductance falls off with separation, with some spread *)
          let g = g_scale /. d *. Rng.log_uniform rng ~lo:0.5 ~hi:2.0 in
          Netlist.add_r nl (i + 1) (j + 1) (1.0 /. g);
          incr added
        end
      end
    done
  done;
  (* backplane: resistive + capacitive path to ground at every contact *)
  for i = 0 to n - 1 do
    let g = g_back *. Rng.log_uniform rng ~lo:0.5 ~hi:2.0 in
    Netlist.add_r nl (i + 1) 0 (1.0 /. g);
    Netlist.add_c nl (i + 1) 0 (c_back *. Rng.log_uniform rng ~lo:0.5 ~hi:2.0)
  done;
  for i = 0 to ports - 1 do
    ignore (Netlist.add_port nl (i + 1))
  done;
  nl

(* Typical substrate relaxation frequency (rad/s), for sampling ranges. *)
let corner_frequency ?(g_back = 2e-4) ?(c_back = 50e-15) () = g_back /. c_back
