(** Uniform RC transmission-line segment chain: the quickstart example and
    a convenient analytically checkable system. *)

val generate : ?sections:int -> ?r:float -> ?c:float -> ?r_term:float -> unit -> Netlist.t
(** [generate ()] builds
    [port(1) --R-- (2) --R-- ... --R_term-- gnd] with capacitance [c] from
    every node to ground; the single port observes the driving-point
    impedance.  Defaults: 50 sections, 10 ohm, 1 pF, 100 ohm
    termination. *)

val dc_resistance : ?sections:int -> ?r:float -> ?r_term:float -> unit -> float
(** DC input resistance of the generated line (for tests):
    [sections*r + r_term]. *)
