(* Uniform RC transmission-line segment chain: the quickstart example and a
   convenient analytically-checkable system (its DC input resistance is the
   sum of the series resistors plus the termination). *)

(* [generate ~sections ~r ~c ~r_term ()] builds a chain

     port(1) --R-- (2) --R-- ... --R-- (sections+1) --R_term-- gnd

   with capacitance [c] from every node to ground.  Port: current injection
   at node 1, observing its voltage (driving-point impedance). *)
let generate ?(sections = 50) ?(r = 10.0) ?(c = 1e-12) ?(r_term = 100.0) () =
  let nl = Netlist.create () in
  ignore (Netlist.add_port nl 1);
  for k = 1 to sections do
    Netlist.add_r nl k (k + 1) r;
    Netlist.add_c nl k 0 c
  done;
  Netlist.add_c nl (sections + 1) 0 c;
  Netlist.add_r nl (sections + 1) 0 r_term;
  nl

(* DC input resistance of the generated line (for tests). *)
let dc_resistance ?(sections = 50) ?(r = 10.0) ?(r_term = 100.0) () =
  (float_of_int sections *. r) +. r_term
