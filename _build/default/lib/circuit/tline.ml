(* Lossy transmission-line segment model: the classic cascade of RLGC
   cells.  Unlike the PEEC tank chain this has a proper characteristic
   impedance and delay; with matched termination its response is smooth,
   with mismatched termination it shows the usual reflection ripple - a
   good stress test for band-limited reduction. *)

(* [generate ~cells ()] builds [cells] RLGC sections between the input port
   and the termination.  Per-cell values default to a 50-ohm line:
   z0 = sqrt(l/c). *)
let generate ?(cells = 30) ?(l_cell = 0.25e-9) ?(c_cell = 0.1e-12) ?(r_cell = 0.5)
    ?(g_leak = 1e-6) ?(r_term = 50.0) () =
  assert (cells >= 1);
  let nl = Netlist.create () in
  let next = ref 1 in
  let fresh () =
    let n = !next in
    incr next;
    n
  in
  let input = fresh () in
  ignore (Netlist.add_port nl input);
  let here = ref input in
  for _ = 1 to cells do
    let mid = fresh () and out = fresh () in
    Netlist.add_r nl !here mid r_cell;
    ignore (Netlist.add_l nl mid out l_cell);
    Netlist.add_c nl out 0 c_cell;
    Netlist.add_r nl out 0 (1.0 /. g_leak);
    here := out
  done;
  Netlist.add_r nl !here 0 r_term;
  (* input-side shunt keeps every node capacitively loaded *)
  Netlist.add_c nl input 0 (c_cell /. 2.0);
  nl

(* Characteristic impedance of the default cell values. *)
let z0 ?(l_cell = 0.25e-9) ?(c_cell = 0.1e-12) () = sqrt (l_cell /. c_cell)

(* One-way delay of the line (seconds). *)
let delay ?(cells = 30) ?(l_cell = 0.25e-9) ?(c_cell = 0.1e-12) () =
  float_of_int cells *. sqrt (l_cell *. c_cell)

(* Band (rad/s) within which the discrete cell cascade approximates a
   continuous line (up to ~1/3 of the cell cutoff). *)
let valid_band ?(l_cell = 0.25e-9) ?(c_cell = 0.1e-12) () =
  2.0 /. sqrt (l_cell *. c_cell) /. 3.0
