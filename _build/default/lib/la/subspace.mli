(** Principal angles between column subspaces (Bjorck-Golub): the cosines
    are the singular values of [Q1^T Q2] for orthonormal bases.  Used to
    measure convergence of PMTBR projection subspaces to exact dominant
    eigenspaces (paper Fig. 6). *)

val principal_angles : Mat.t -> Mat.t -> float array
(** Principal angles (radians, ascending) between the column spaces of the
    two matrices; the inputs are orthonormalised internally. *)

val max_angle : Mat.t -> Mat.t -> float
(** Largest principal angle; [0] when one space contains the other. *)

val vector_to_subspace_angle : float array -> Mat.t -> float
(** Angle between a single vector and the column space of a matrix. *)
