(** Cholesky factorisations of symmetric positive (semi)definite matrices. *)

exception Not_positive_definite of int
(** Raised by {!factor} with the index of the failing pivot. *)

val factor : Mat.t -> Mat.t
(** [factor a] is the lower-triangular [l] with [a = l * l^T].
    @raise Not_positive_definite if a pivot is non-positive. *)

val psd_factor : ?tol:float -> Mat.t -> Mat.t * int
(** Diagonally pivoted Cholesky for positive-semidefinite matrices:
    [psd_factor a] is [(l, rank)] with [a ~= l1 * l1^T] where [l1] is the
    first [rank] columns of [l].  Stops when the largest remaining diagonal
    falls below [tol] (default [1e-14]) times the initial largest
    diagonal. *)

val solve_vec : Mat.t -> float array -> float array
(** [solve_vec l b] solves [a x = b] given [l = factor a]. *)
