(** Dense real matrices (row-major), plus real-specific conveniences.

    All dense-matrix operations shared with the complex instantiation —
    construction, slicing, BLAS-level kernels, LU factorisation — come from
    the {!Gen_mat} functor; see {!Gen_mat.S} for their documentation. *)

include Gen_mat.S with type elt = float

val of_fun : int -> int -> (int -> int -> float) -> t
(** Alias of [init]. *)

val diag : float array -> t
(** Square diagonal matrix with the given diagonal. *)

val diagonal : t -> float array
(** The main diagonal (length [min rows cols]). *)

val symmetrize : t -> t
(** [(a + a^T) / 2] of a square matrix. *)

val is_symmetric : ?tol:float -> t -> bool
(** Whether [a] is square and symmetric up to [tol] relative to its largest
    entry (default [1e-12]). *)

val gram : t -> t
(** [gram a] is [a^T * a], computed without forming the transpose. *)

val random : ?seed:int -> int -> int -> t
(** Deterministic pseudo-random matrix with entries in [(-1, 1)]; the same
    [seed] always yields the same matrix. *)
