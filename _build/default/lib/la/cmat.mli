(** Dense complex matrices, plus conversions with the real world. *)

include Gen_mat.S with type elt = Complex.t

val of_mat : Mat.t -> t
(** Embed a real matrix. *)

val re : t -> Mat.t
(** Entrywise real parts. *)

val im : t -> Mat.t
(** Entrywise imaginary parts. *)

val axpby_real : alpha:Complex.t -> Mat.t -> beta:Complex.t -> Mat.t -> t
(** [axpby_real ~alpha a ~beta b] is the complex matrix [alpha*a + beta*b]
    for real [a], [b] of equal shape: the shifted-pencil assembly used when
    forming [(sE - A)] densely. *)

val realify_columns : t -> Mat.t
(** Interleave real and imaginary parts of each column:
    [[Re z1, Im z1, Re z2, ...]].  Over the reals this spans the same space
    as the columns together with their conjugates; used to realify PMTBR
    sample matrices. *)
