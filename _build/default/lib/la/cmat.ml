(* Dense complex matrices plus conversions with the real world. *)

include Gen_mat.Make (Scalar.Cx)

let of_mat (m : Mat.t) = init m.Mat.rows m.Mat.cols (fun i j -> { Complex.re = Mat.get m i j; im = 0.0 })

let re (m : t) = Mat.init m.rows m.cols (fun i j -> (get m i j).Complex.re)
let im (m : t) = Mat.init m.rows m.cols (fun i j -> (get m i j).Complex.im)

(* [a + s*b] for real matrices a, b and complex s: the shifted-pencil
   assembly used when forming (sE - A). *)
let axpby_real ~(alpha : Complex.t) (a : Mat.t) ~(beta : Complex.t) (b : Mat.t) =
  assert (Mat.dims a = Mat.dims b);
  init a.Mat.rows a.Mat.cols (fun i j ->
      Complex.add
        (Scalar.Cx.scale (Mat.get a i j) alpha)
        (Scalar.Cx.scale (Mat.get b i j) beta))

(* Interleave real and imaginary parts of each column: the real matrix
   [Re z_1, Im z_1, Re z_2, ...].  Spans the same real subspace as
   [z_1, z_1^*, ...]; used to realify PMTBR sample matrices. *)
let realify_columns (m : t) =
  Mat.init m.rows (2 * m.cols) (fun i j ->
      let z = get m i (j / 2) in
      if j mod 2 = 0 then z.Complex.re else z.Complex.im)
