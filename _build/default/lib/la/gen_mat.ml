(* Dense row-major matrices over an arbitrary scalar field.  The real and
   complex matrix modules ([Mat], [Cmat]) are instantiations of this functor,
   so storage layout, BLAS-level kernels and LU factorisation are shared. *)

module type S = sig
  type elt
  type t = { rows : int; cols : int; data : elt array }

  val create : int -> int -> t
  val init : int -> int -> (int -> int -> elt) -> t
  val identity : int -> t
  val dims : t -> int * int
  val get : t -> int -> int -> elt
  val set : t -> int -> int -> elt -> unit
  val update : t -> int -> int -> (elt -> elt) -> unit
  val copy : t -> t
  val of_arrays : elt array array -> t
  val to_arrays : t -> elt array array
  val col : t -> int -> elt array
  val row : t -> int -> elt array
  val set_col : t -> int -> elt array -> unit
  val set_row : t -> int -> elt array -> unit
  val sub_cols : t -> int -> int -> t
  val sub_matrix : t -> row:int -> col:int -> rows:int -> cols:int -> t
  val hcat : t -> t -> t
  val vcat : t -> t -> t
  val transpose : t -> t
  val conj_transpose : t -> t
  val map : (elt -> elt) -> t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : float -> t -> t
  val scale_elt : elt -> t -> t
  val mul : t -> t -> t
  val mv : t -> elt array -> elt array
  val mv_transposed : t -> elt array -> elt array
  val frobenius : t -> float
  val max_abs : t -> float
  val swap_rows : t -> int -> int -> unit

  type lu

  val lu : t -> lu
  val lu_solve_vec : lu -> elt array -> elt array
  val lu_solve : lu -> t -> t
  val solve : t -> t -> t
  val solve_vec : t -> elt array -> elt array
  val inverse : t -> t
  val det : t -> elt
  val trace : t -> elt
  val norm_1 : t -> float
  val cond_1 : t -> float
  val pp : Format.formatter -> t -> unit

  exception Singular of int
end

module Make (K : Scalar.S) : S with type elt = K.t = struct
  type elt = K.t
  type t = { rows : int; cols : int; data : elt array }

  exception Singular of int

  let create rows cols =
    assert (rows >= 0 && cols >= 0);
    { rows; cols; data = Array.make (rows * cols) K.zero }

  let init rows cols f =
    let data = Array.make (rows * cols) K.zero in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        data.((i * cols) + j) <- f i j
      done
    done;
    { rows; cols; data }

  let identity n = init n n (fun i j -> if i = j then K.one else K.zero)
  let dims m = (m.rows, m.cols)
  let get m i j = m.data.((i * m.cols) + j)
  let set m i j v = m.data.((i * m.cols) + j) <- v

  let update m i j f =
    let k = (i * m.cols) + j in
    m.data.(k) <- f m.data.(k)

  let copy m = { m with data = Array.copy m.data }

  let of_arrays rows_arr =
    let rows = Array.length rows_arr in
    let cols = if rows = 0 then 0 else Array.length rows_arr.(0) in
    Array.iter (fun r -> assert (Array.length r = cols)) rows_arr;
    init rows cols (fun i j -> rows_arr.(i).(j))

  let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (get m i))
  let col m j = Array.init m.rows (fun i -> get m i j)
  let row m i = Array.sub m.data (i * m.cols) m.cols

  let set_col m j v =
    assert (Array.length v = m.rows);
    for i = 0 to m.rows - 1 do
      set m i j v.(i)
    done

  let set_row m i v =
    assert (Array.length v = m.cols);
    Array.blit v 0 m.data (i * m.cols) m.cols

  let sub_matrix m ~row ~col ~rows ~cols =
    assert (row >= 0 && col >= 0 && row + rows <= m.rows && col + cols <= m.cols);
    init rows cols (fun i j -> get m (row + i) (col + j))

  let sub_cols m j0 ncols = sub_matrix m ~row:0 ~col:j0 ~rows:m.rows ~cols:ncols

  let hcat a b =
    assert (a.rows = b.rows);
    init a.rows (a.cols + b.cols) (fun i j ->
        if j < a.cols then get a i j else get b i (j - a.cols))

  let vcat a b =
    assert (a.cols = b.cols);
    init (a.rows + b.rows) a.cols (fun i j ->
        if i < a.rows then get a i j else get b (i - a.rows) j)

  let transpose m = init m.cols m.rows (fun i j -> get m j i)
  let conj_transpose m = init m.cols m.rows (fun i j -> K.conj (get m j i))
  let map f m = { m with data = Array.map f m.data }

  let add a b =
    assert (a.rows = b.rows && a.cols = b.cols);
    { a with data = Array.init (Array.length a.data) (fun k -> K.add a.data.(k) b.data.(k)) }

  let sub a b =
    assert (a.rows = b.rows && a.cols = b.cols);
    { a with data = Array.init (Array.length a.data) (fun k -> K.sub a.data.(k) b.data.(k)) }

  let scale s m = map (K.scale s) m
  let scale_elt s m = map (K.mul s) m

  (* Cache-friendly ikj-order GEMM. *)
  let mul a b =
    assert (a.cols = b.rows);
    let c = create a.rows b.cols in
    let n = b.cols in
    for i = 0 to a.rows - 1 do
      for k = 0 to a.cols - 1 do
        let aik = get a i k in
        if not (K.is_zero aik) then begin
          let brow = k * n and crow = i * n in
          for j = 0 to n - 1 do
            c.data.(crow + j) <- K.add c.data.(crow + j) (K.mul aik b.data.(brow + j))
          done
        end
      done
    done;
    c

  let mv m x =
    assert (Array.length x = m.cols);
    Array.init m.rows (fun i ->
        let acc = ref K.zero in
        let base = i * m.cols in
        for j = 0 to m.cols - 1 do
          acc := K.add !acc (K.mul m.data.(base + j) x.(j))
        done;
        !acc)

  let mv_transposed m x =
    assert (Array.length x = m.rows);
    let y = Array.make m.cols K.zero in
    for i = 0 to m.rows - 1 do
      let xi = x.(i) in
      if not (K.is_zero xi) then begin
        let base = i * m.cols in
        for j = 0 to m.cols - 1 do
          y.(j) <- K.add y.(j) (K.mul m.data.(base + j) xi)
        done
      end
    done;
    y

  let frobenius m =
    let acc = ref 0.0 in
    Array.iter (fun v -> let a = K.abs v in acc := !acc +. (a *. a)) m.data;
    sqrt !acc

  let max_abs m = Array.fold_left (fun acc v -> Float.max acc (K.abs v)) 0.0 m.data

  let swap_rows m i j =
    if i <> j then
      for k = 0 to m.cols - 1 do
        let t = get m i k in
        set m i k (get m j k);
        set m j k t
      done

  (* LU with partial pivoting, stored packed: L strictly below the diagonal
     (unit diagonal implicit), U on and above. *)
  type lu = { lu_mat : t; perm : int array }

  let lu a =
    assert (a.rows = a.cols);
    let n = a.rows in
    let m = copy a in
    let perm = Array.init n (fun i -> i) in
    for k = 0 to n - 1 do
      let piv = ref k and pmax = ref (K.abs (get m k k)) in
      for i = k + 1 to n - 1 do
        let v = K.abs (get m i k) in
        if v > !pmax then begin piv := i; pmax := v end
      done;
      if !pmax = 0.0 then raise (Singular k);
      if !piv <> k then begin
        swap_rows m k !piv;
        let t = perm.(k) in
        perm.(k) <- perm.(!piv);
        perm.(!piv) <- t
      end;
      let dkk = get m k k in
      for i = k + 1 to n - 1 do
        let lik = K.div (get m i k) dkk in
        set m i k lik;
        if not (K.is_zero lik) then begin
          let ibase = i * n and kbase = k * n in
          for j = k + 1 to n - 1 do
            m.data.(ibase + j) <- K.sub m.data.(ibase + j) (K.mul lik m.data.(kbase + j))
          done
        end
      done
    done;
    { lu_mat = m; perm }

  let lu_solve_vec { lu_mat = m; perm } b =
    let n = m.rows in
    assert (Array.length b = n);
    let y = Array.init n (fun i -> b.(perm.(i))) in
    for i = 1 to n - 1 do
      let acc = ref y.(i) in
      for j = 0 to i - 1 do
        acc := K.sub !acc (K.mul (get m i j) y.(j))
      done;
      y.(i) <- !acc
    done;
    for i = n - 1 downto 0 do
      let acc = ref y.(i) in
      for j = i + 1 to n - 1 do
        acc := K.sub !acc (K.mul (get m i j) y.(j))
      done;
      y.(i) <- K.div !acc (get m i i)
    done;
    y

  let lu_solve f b =
    let x = create b.rows b.cols in
    for j = 0 to b.cols - 1 do
      set_col x j (lu_solve_vec f (col b j))
    done;
    x

  let solve a b = lu_solve (lu a) b
  let solve_vec a b = lu_solve_vec (lu a) b
  let inverse a = solve a (identity a.rows)

  (* Determinant from the LU factors: product of U's diagonal times the
     sign of the row permutation. *)
  let det a =
    match lu a with
    | { lu_mat; perm } ->
        let n = lu_mat.rows in
        let prod = ref K.one in
        for i = 0 to n - 1 do
          prod := K.mul !prod (get lu_mat i i)
        done;
        (* permutation parity by cycle counting *)
        let seen = Array.make n false in
        let swaps = ref 0 in
        for i = 0 to n - 1 do
          if not seen.(i) then begin
            let j = ref i and len = ref 0 in
            while not seen.(!j) do
              seen.(!j) <- true;
              j := perm.(!j);
              incr len
            done;
            swaps := !swaps + (!len - 1)
          end
        done;
        if !swaps land 1 = 1 then K.neg !prod else !prod
    | exception Singular _ -> K.zero

  let trace a =
    assert (a.rows = a.cols);
    let acc = ref K.zero in
    for i = 0 to a.rows - 1 do
      acc := K.add !acc (get a i i)
    done;
    !acc

  (* Maximum column sum of moduli. *)
  let norm_1 a =
    let worst = ref 0.0 in
    for j = 0 to a.cols - 1 do
      let acc = ref 0.0 in
      for i = 0 to a.rows - 1 do
        acc := !acc +. K.abs (get a i j)
      done;
      worst := Float.max !worst !acc
    done;
    !worst

  (* 1-norm condition number via the explicit inverse: exact (not an
     estimate), adequate at the dense sizes used here. *)
  let cond_1 a =
    match inverse a with
    | ainv -> norm_1 a *. norm_1 ainv
    | exception Singular _ -> Float.infinity

  let pp ppf m =
    Format.fprintf ppf "@[<v>";
    for i = 0 to m.rows - 1 do
      Format.fprintf ppf "@[<h>";
      for j = 0 to m.cols - 1 do
        if j > 0 then Format.fprintf ppf "  ";
        K.pp ppf (get m i j)
      done;
      Format.fprintf ppf "@]@,"
    done;
    Format.fprintf ppf "@]"
end
