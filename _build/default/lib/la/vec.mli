(** Helpers on [float array] vectors. *)

val make : int -> float -> float array
(** [make n v] is a vector of [n] copies of [v]. *)

val zeros : int -> float array
(** [zeros n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> float array
(** [init n f] is [[| f 0; ...; f (n-1) |]]. *)

val copy : float array -> float array
(** Fresh copy. *)

val dot : float array -> float array -> float
(** Euclidean inner product.  Both arguments must have the same length. *)

val norm2 : float array -> float
(** Euclidean norm. *)

val norm_inf : float array -> float
(** Largest absolute entry. *)

val add : float array -> float array -> float array
(** Elementwise sum. *)

val sub : float array -> float array -> float array
(** Elementwise difference. *)

val scale : float -> float array -> float array
(** [scale a x] is [a * x]. *)

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y <- y + a*x] in place. *)

val normalize : float array -> float array
(** Unit-norm copy; returns the input unchanged if it is zero. *)

val max_abs_diff : float array -> float array -> float
(** Infinity norm of the difference. *)

val linspace : float -> float -> int -> float array
(** [linspace lo hi n] is [n] equispaced values from [lo] to [hi]
    inclusive. *)

val logspace : float -> float -> int -> float array
(** [logspace lo hi n] is [n] log-spaced values from [lo] to [hi]; both
    bounds must be positive. *)

val pp : Format.formatter -> float array -> unit
(** Bracketed, semicolon-separated rendering. *)
