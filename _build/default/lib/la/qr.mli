(** Householder QR factorisations of dense real matrices. *)

type pivoted = {
  q : Mat.t;  (** thin orthonormal factor, [m x min m n] *)
  r : Mat.t;  (** upper-triangular factor of the permuted matrix *)
  jpvt : int array;  (** column permutation: column [k] of [q*r] is column [jpvt.(k)] of the input *)
  rank : int;  (** numerical rank detected during pivoting *)
}
(** Result of a column-pivoted (rank-revealing) factorisation. *)

val thin : Mat.t -> Mat.t * Mat.t
(** [thin a] for [a] of shape [m x n] with [m >= n] returns [(q, r)] with
    [a = q * r], [q] of shape [m x n] with orthonormal columns and [r]
    upper triangular. *)

val pivoted : ?tol:float -> Mat.t -> pivoted
(** Column-pivoted Householder QR of a matrix of any shape.  Elimination
    stops when the largest remaining column norm falls below [tol] (default
    [1e-12]) relative to the largest original column norm; the number of
    completed steps is the [rank] estimate (the RRQR of the paper's Section
    V-C discussion). *)

val orth : ?tol:float -> Mat.t -> Mat.t
(** Orthonormal basis of the column space, via {!pivoted}.  Handles
    rank-deficient and wide inputs; a numerically zero input yields a basis
    with zero columns. *)
