(* Symmetric eigendecomposition by the cyclic Jacobi method.

   [decompose a] returns (values, vectors) with a = V * diag(values) * V^T,
   eigenvalues sorted descending and V's columns the matching orthonormal
   eigenvectors.  Used for Gramian factorisations (Gramians are symmetric
   PSD) and for the fast symmetric-A Lyapunov path. *)

let max_sweeps = 60

let decompose (a : Mat.t) =
  assert (a.Mat.rows = a.Mat.cols);
  let n = a.Mat.rows in
  let w = Mat.symmetrize a in
  let v = Mat.identity n in
  let off () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let x = Mat.get w i j in
        acc := !acc +. (x *. x)
      done
    done;
    sqrt !acc
  in
  let scale = Float.max 1e-300 (Mat.max_abs w) in
  let tol = 1e-15 *. scale *. float_of_int n in
  let sweeps = ref 0 in
  while off () > tol && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.get w p q in
        if Float.abs apq > 1e-18 *. scale then begin
          let app = Mat.get w p p and aqq = Mat.get w q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let s = if theta >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs theta +. sqrt (1.0 +. (theta *. theta)))
          in
          let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
          let s = c *. t in
          (* Rotate rows/cols p and q of w. *)
          for k = 0 to n - 1 do
            let wkp = Mat.get w k p and wkq = Mat.get w k q in
            Mat.set w k p ((c *. wkp) -. (s *. wkq));
            Mat.set w k q ((s *. wkp) +. (c *. wkq))
          done;
          for k = 0 to n - 1 do
            let wpk = Mat.get w p k and wqk = Mat.get w q k in
            Mat.set w p k ((c *. wpk) -. (s *. wqk));
            Mat.set w q k ((s *. wpk) +. (c *. wqk))
          done;
          for k = 0 to n - 1 do
            let vkp = Mat.get v k p and vkq = Mat.get v k q in
            Mat.set v k p ((c *. vkp) -. (s *. vkq));
            Mat.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let values = Array.init n (fun i -> Mat.get w i i) in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare values.(j) values.(i)) order;
  let sorted = Array.map (fun i -> values.(i)) order in
  let vs = Mat.init n n (fun i j -> Mat.get v i order.(j)) in
  (sorted, vs)

let eigenvalues a = fst (decompose a)

(* Factor of a symmetric PSD matrix: [x = l * l^T] with negative eigenvalues
   (numerical noise in Lyapunov solutions) clipped to zero.  Columns of [l]
   are scaled eigenvectors, so rank deficiency is handled gracefully. *)
let psd_factor ?(tol = 1e-14) (x : Mat.t) =
  let values, v = decompose x in
  let n = Array.length values in
  let vmax = if n = 0 then 0.0 else Float.max 0.0 values.(0) in
  let cols = ref [] in
  for j = n - 1 downto 0 do
    if values.(j) > tol *. vmax && values.(j) > 0.0 then cols := j :: !cols
  done;
  let cols = Array.of_list !cols in
  Mat.init n (Array.length cols) (fun i j ->
      Mat.get v i cols.(j) *. sqrt values.(cols.(j)))
