(* Thin singular value decomposition of dense real matrices by one-sided
   Jacobi rotations (Hestenes).  Chosen for robustness and simplicity: it
   computes small singular values to high relative accuracy, which matters
   here because PMTBR order control reads 10-15 decades of singular value
   decay (paper Fig. 5).

   [decompose a] returns (u, sigma, v) with a = u * diag(sigma) * v^T,
   u : m×r, v : n×r orthonormal columns, sigma descending, r = min m n. *)

type t = { u : Mat.t; sigma : float array; v : Mat.t }

let max_sweeps = 60

(* Core routine for m >= n. *)
let jacobi_tall (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  let w = Mat.copy a in
  let v = Mat.identity n in
  let eps = 1e-15 in
  let converged = ref false in
  let sweeps = ref 0 in
  while (not !converged) && !sweeps < max_sweeps do
    incr sweeps;
    converged := true;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        (* alpha = w_p . w_p, beta = w_q . w_q, gamma = w_p . w_q *)
        let alpha = ref 0.0 and beta = ref 0.0 and gamma = ref 0.0 in
        for i = 0 to m - 1 do
          let wp = Mat.get w i p and wq = Mat.get w i q in
          alpha := !alpha +. (wp *. wp);
          beta := !beta +. (wq *. wq);
          gamma := !gamma +. (wp *. wq)
        done;
        let alpha = !alpha and beta = !beta and gamma = !gamma in
        if Float.abs gamma > eps *. sqrt (alpha *. beta) && gamma <> 0.0 then begin
          converged := false;
          let zeta = (beta -. alpha) /. (2.0 *. gamma) in
          let t =
            (* tan of the rotation angle, the root of smaller magnitude *)
            let s = if zeta >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs zeta +. sqrt (1.0 +. (zeta *. zeta)))
          in
          let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
          let s = c *. t in
          for i = 0 to m - 1 do
            let wp = Mat.get w i p and wq = Mat.get w i q in
            Mat.set w i p ((c *. wp) -. (s *. wq));
            Mat.set w i q ((s *. wp) +. (c *. wq))
          done;
          for i = 0 to n - 1 do
            let vp = Mat.get v i p and vq = Mat.get v i q in
            Mat.set v i p ((c *. vp) -. (s *. vq));
            Mat.set v i q ((s *. vp) +. (c *. vq))
          done
        end
      done
    done
  done;
  (* Singular values are the column norms of w; normalise to get U. *)
  let sigma = Array.init n (fun j -> Vec.norm2 (Mat.col w j)) in
  let order = Array.init n (fun j -> j) in
  Array.sort (fun i j -> compare sigma.(j) sigma.(i)) order;
  let s_sorted = Array.map (fun j -> sigma.(j)) order in
  let u = Mat.create m n in
  let vs = Mat.create n n in
  Array.iteri
    (fun jnew jold ->
      let s = sigma.(jold) in
      let colw = Mat.col w jold in
      let ucol = if s > 0.0 then Vec.scale (1.0 /. s) colw else colw in
      Mat.set_col u jnew ucol;
      Mat.set_col vs jnew (Mat.col v jold))
    order;
  { u; sigma = s_sorted; v = vs }

let decompose (a : Mat.t) =
  if a.Mat.rows >= a.Mat.cols then jacobi_tall a
  else begin
    let { u; sigma; v } = jacobi_tall (Mat.transpose a) in
    { u = v; sigma; v = u }
  end

(* Singular values only. *)
let values a = (decompose a).sigma

(* Numerical rank at relative tolerance [tol]. *)
let rank ?(tol = 1e-12) a =
  let s = values a in
  if Array.length s = 0 || s.(0) = 0.0 then 0
  else begin
    let r = ref 0 in
    Array.iter (fun si -> if si > tol *. s.(0) then incr r) s;
    !r
  end

(* Leading [k] left singular vectors. *)
let left_vectors t k = Mat.sub_cols t.u 0 k
