(* Cholesky factorisations of symmetric positive (semi)definite matrices. *)

exception Not_positive_definite of int

(* [factor a] returns lower-triangular l with a = l * l^T; raises
   [Not_positive_definite] on a non-PD input. *)
let factor (a : Mat.t) =
  assert (a.Mat.rows = a.Mat.cols);
  let n = a.Mat.rows in
  let l = Mat.create n n in
  for j = 0 to n - 1 do
    let d = ref (Mat.get a j j) in
    for k = 0 to j - 1 do
      let v = Mat.get l j k in
      d := !d -. (v *. v)
    done;
    if !d <= 0.0 then raise (Not_positive_definite j);
    let djj = sqrt !d in
    Mat.set l j j djj;
    for i = j + 1 to n - 1 do
      let s = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (Mat.get l i k *. Mat.get l j k)
      done;
      Mat.set l i j (!s /. djj)
    done
  done;
  l

(* Pivoted Cholesky for PSD matrices: returns (l, rank) with
   a ~= l * l^T, l of shape n x rank.  Stops when the largest remaining
   diagonal falls below [tol] times the initial largest diagonal. *)
let psd_factor ?(tol = 1e-14) (a : Mat.t) =
  assert (a.Mat.rows = a.Mat.cols);
  let n = a.Mat.rows in
  let w = Mat.symmetrize a in
  let piv = Array.init n (fun i -> i) in
  let l = Mat.create n n in
  let d0 = ref 0.0 in
  for i = 0 to n - 1 do
    d0 := Float.max !d0 (Mat.get w i i)
  done;
  let rank = ref 0 in
  (try
     for k = 0 to n - 1 do
       (* choose the pivot: largest remaining diagonal *)
       let best = ref k in
       for i = k + 1 to n - 1 do
         if Mat.get w piv.(i) piv.(i) > Mat.get w piv.(!best) piv.(!best) then best := i
       done;
       let t = piv.(k) in
       piv.(k) <- piv.(!best);
       piv.(!best) <- t;
       (* also permute computed rows of l *)
       for c = 0 to k - 1 do
         let tmp = Mat.get l k c in
         Mat.set l k c (Mat.get l !best c);
         Mat.set l !best c tmp
       done;
       ignore t;
       let p = piv.(k) in
       let dk = Mat.get w p p in
       if dk <= tol *. Float.max 1e-300 !d0 then raise Exit;
       incr rank;
       let djj = sqrt dk in
       Mat.set l k k djj;
       for i = k + 1 to n - 1 do
         let pi = piv.(i) in
         let s = ref (Mat.get w pi p) in
         for c = 0 to k - 1 do
           s := !s -. (Mat.get l i c *. Mat.get l k c)
         done;
         Mat.set l i k (!s /. djj)
       done;
       (* update remaining diagonal *)
       for i = k + 1 to n - 1 do
         let pi = piv.(i) in
         let lik = Mat.get l i k in
         Mat.set w pi pi (Mat.get w pi pi -. (lik *. lik))
       done
     done
   with Exit -> ());
  let r = !rank in
  (* undo the row permutation: row piv.(i) of the result is row i of l *)
  let out = Mat.create n r in
  for i = 0 to n - 1 do
    for j = 0 to r - 1 do
      Mat.set out piv.(i) j (Mat.get l i j)
    done
  done;
  (out, r)

(* Solve a x = b given l = factor a. *)
let solve_vec l b =
  let n = l.Mat.rows in
  assert (Array.length b = n);
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get l i j *. y.(j))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l j i *. y.(j))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  y
