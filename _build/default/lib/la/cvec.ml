(* Helpers on [Complex.t array] vectors. *)

let zeros n = Array.make n Complex.zero
let of_real = Array.map (fun re -> { Complex.re; im = 0.0 })
let re = Array.map (fun z -> z.Complex.re)
let im = Array.map (fun z -> z.Complex.im)

(* Hermitian inner product, conjugating the first argument. *)
let dot x y =
  assert (Array.length x = Array.length y);
  let acc = ref Complex.zero in
  for i = 0 to Array.length x - 1 do
    acc := Complex.add !acc (Complex.mul (Complex.conj x.(i)) y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x).Complex.re
let scale a x = Array.map (fun v -> Complex.mul a v) x
let add x y = Array.mapi (fun i xi -> Complex.add xi y.(i)) x
let sub x y = Array.mapi (fun i xi -> Complex.sub xi y.(i)) x

let axpy a x y =
  for i = 0 to Array.length x - 1 do
    y.(i) <- Complex.add y.(i) (Complex.mul a x.(i))
  done

let max_abs x = Array.fold_left (fun acc v -> Float.max acc (Complex.norm v)) 0.0 x
