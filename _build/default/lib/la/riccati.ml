(* Continuous algebraic Riccati equations by the Newton-Kleinman iteration:

     A^T X + X A - X G X + Q = 0,     G = B B^T (PSD), Q PSD

   Each Newton step solves one Lyapunov equation with the current
   closed-loop matrix A - G X_k, so the whole solver rides on [Lyap].  For
   stable A the zero matrix is a stabilising initial guess and convergence
   is quadratic and monotone.  The Riccati machinery is what the
   positive-real / LQG balancing extensions of TBR (the paper's cited
   future work, ref. [12]) are built from. *)

exception Not_converged

(* Solve A^T X + X A - X G X + Q = 0 for symmetric PSD X.
   Requires A stable (so X0 = 0 stabilises). *)
let care ?(max_iter = 60) ?(tol = 1e-11) ~(a : Mat.t) ~(g : Mat.t) ~(q : Mat.t) () =
  let n = a.Mat.rows in
  assert (g.Mat.rows = n && q.Mat.rows = n);
  let residual x =
    let at_x = Mat.mul (Mat.transpose a) x in
    let xa = Mat.mul x a in
    let xgx = Mat.mul x (Mat.mul g x) in
    Mat.frobenius (Mat.add (Mat.sub (Mat.add at_x xa) xgx) q)
  in
  let scale = Float.max 1.0 (Mat.frobenius q) in
  let rec iterate x k =
    if k >= max_iter then raise Not_converged
    else begin
      (* closed loop: Ak = A - G X; solve Ak^T Y + Y Ak + (Q + X G X) = 0 *)
      let ak = Mat.sub a (Mat.mul g x) in
      let rhs = Mat.symmetrize (Mat.add q (Mat.mul x (Mat.mul g x))) in
      let y = Lyap.solve (Mat.transpose ak) rhs in
      if residual y <= tol *. scale then y
      else if Mat.frobenius (Mat.sub y x) <= 1e-14 *. Float.max 1.0 (Mat.frobenius y) then
        (* stagnation at the achievable accuracy *)
        y
      else iterate y (k + 1)
    end
  in
  iterate (Mat.create n n) 0

(* Residual norm, for the tests. *)
let care_residual ~a ~g ~q x =
  let at_x = Mat.mul (Mat.transpose a) x in
  let xa = Mat.mul x a in
  let xgx = Mat.mul x (Mat.mul g x) in
  Mat.frobenius (Mat.add (Mat.sub (Mat.add at_x xa) xgx) q)
