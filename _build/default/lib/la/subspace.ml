(* Principal angles between column subspaces (Bjorck-Golub): the cosines are
   the singular values of Q1^T Q2 for orthonormal bases Q1, Q2.  Used to
   measure convergence of PMTBR projection subspaces to the exact dominant
   eigenspaces (paper Fig. 6). *)

let clamp x = Float.min 1.0 (Float.max (-1.0) x)

(* Principal angles (radians, ascending) between col spaces of a and b. *)
let principal_angles (a : Mat.t) (b : Mat.t) =
  let qa = Qr.orth a and qb = Qr.orth b in
  let m = Mat.mul (Mat.transpose qa) qb in
  let s = Svd.values m in
  let k = min (Array.length s) (min qa.Mat.cols qb.Mat.cols) in
  Array.init k (fun i -> Float.acos (clamp s.(i)))

(* Largest principal angle: 0 when one space contains the other. *)
let max_angle a b =
  let angles = principal_angles a b in
  Array.fold_left Float.max 0.0 angles

(* Angle between a single vector and a subspace: the angle between the
   vector and its orthogonal projection onto the subspace. *)
let vector_to_subspace_angle (x : float array) (basis : Mat.t) =
  let q = Qr.orth basis in
  let xn = Vec.normalize x in
  let coeffs = Mat.mv_transposed q xn in
  let proj_norm = Vec.norm2 coeffs in
  Float.acos (clamp proj_norm)
