(* Scalar fields shared by the dense and sparse matrix functors.  [abs] is
   the modulus used for pivoting; [conj] is the identity on reals. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val conj : t -> t
  val abs : t -> float
  val of_float : float -> t
  val scale : float -> t -> t
  val is_zero : t -> bool
  val pp : Format.formatter -> t -> unit
end

module Float : S with type t = float = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let conj x = x
  let abs = Float.abs
  let of_float x = x
  let scale a x = a *. x
  let is_zero x = x = 0.0
  let pp ppf x = Format.fprintf ppf "%.6g" x
end

module Cx : S with type t = Complex.t = struct
  type t = Complex.t

  let zero = Complex.zero
  let one = Complex.one
  let add = Complex.add
  let sub = Complex.sub
  let mul = Complex.mul
  let div = Complex.div
  let neg = Complex.neg
  let conj = Complex.conj
  let abs = Complex.norm
  let of_float x = { Complex.re = x; im = 0.0 }
  let scale a { Complex.re; im } = { Complex.re = a *. re; im = a *. im }
  let is_zero { Complex.re; im } = re = 0.0 && im = 0.0
  let pp ppf { Complex.re; im } = Format.fprintf ppf "(%.6g%+.6gi)" re im
end
