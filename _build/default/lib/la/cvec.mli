(** Helpers on [Complex.t array] vectors. *)

val zeros : int -> Complex.t array
(** [zeros n] is the complex zero vector of dimension [n]. *)

val of_real : float array -> Complex.t array
(** Embed a real vector. *)

val re : Complex.t array -> float array
(** Real parts. *)

val im : Complex.t array -> float array
(** Imaginary parts. *)

val dot : Complex.t array -> Complex.t array -> Complex.t
(** Hermitian inner product, conjugating the {e first} argument. *)

val norm2 : Complex.t array -> float
(** Euclidean norm. *)

val scale : Complex.t -> Complex.t array -> Complex.t array
(** Scalar multiple. *)

val add : Complex.t array -> Complex.t array -> Complex.t array
(** Elementwise sum. *)

val sub : Complex.t array -> Complex.t array -> Complex.t array
(** Elementwise difference. *)

val axpy : Complex.t -> Complex.t array -> Complex.t array -> unit
(** [axpy a x y] performs [y <- y + a*x] in place. *)

val max_abs : Complex.t array -> float
(** Largest modulus. *)
