(* Dense real matrices: the [Gen_mat] functor instantiated at floats, plus
   real-specific conveniences. *)

include Gen_mat.Make (Scalar.Float)

let of_fun = init
let diag v = init (Array.length v) (Array.length v) (fun i j -> if i = j then v.(i) else 0.0)
let diagonal m = Array.init (min m.rows m.cols) (fun i -> get m i i)

let symmetrize m =
  assert (m.rows = m.cols);
  init m.rows m.cols (fun i j -> 0.5 *. (get m i j +. get m j i))

let is_symmetric ?(tol = 1e-12) m =
  m.rows = m.cols
  &&
  let scale = Float.max 1.0 (max_abs m) in
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j -. get m j i) > tol *. scale then ok := false
    done
  done;
  !ok

(* A^T * A without forming the transpose. *)
let gram m =
  let g = create m.cols m.cols in
  for k = 0 to m.rows - 1 do
    let base = k * m.cols in
    for i = 0 to m.cols - 1 do
      let aki = m.data.(base + i) in
      if aki <> 0.0 then
        for j = i to m.cols - 1 do
          let v = get g i j +. (aki *. m.data.(base + j)) in
          set g i j v
        done
    done
  done;
  for i = 0 to m.cols - 1 do
    for j = 0 to i - 1 do
      set g i j (get g j i)
    done
  done;
  g

let random ?(seed = 1) rows cols =
  let state = ref (Int64.of_int (seed + 0x9e3779b9)) in
  let next () =
    (* splitmix64 step, local to keep [Mat] self-contained for tests *)
    state := Int64.add !state 0x9e3779b97f4a7c15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0
  in
  init rows cols (fun _ _ -> (2.0 *. next ()) -. 1.0)
