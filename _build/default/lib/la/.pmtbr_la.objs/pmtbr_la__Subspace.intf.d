lib/la/subspace.mli: Mat
