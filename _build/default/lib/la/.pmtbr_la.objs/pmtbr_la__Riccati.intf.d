lib/la/riccati.mli: Mat
