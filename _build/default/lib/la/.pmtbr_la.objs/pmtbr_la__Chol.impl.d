lib/la/chol.ml: Array Float Mat
