lib/la/cvec.ml: Array Complex Float
