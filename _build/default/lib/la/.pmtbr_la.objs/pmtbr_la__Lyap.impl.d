lib/la/lyap.ml: Array Cmat Complex Cschur Eig_sym Float Mat
