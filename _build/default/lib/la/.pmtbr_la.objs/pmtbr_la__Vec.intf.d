lib/la/vec.mli: Format
