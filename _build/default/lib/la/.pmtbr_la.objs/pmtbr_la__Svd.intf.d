lib/la/svd.mli: Mat
