lib/la/cvec.mli: Complex
