lib/la/subspace.ml: Array Float Mat Qr Svd Vec
