lib/la/vec.ml: Array Float Format
