lib/la/qr.mli: Mat
