lib/la/cschur.mli: Cmat Complex Mat
