lib/la/lyap.mli: Mat
