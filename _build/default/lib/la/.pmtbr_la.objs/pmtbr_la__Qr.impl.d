lib/la/qr.ml: Array Float Mat Vec
