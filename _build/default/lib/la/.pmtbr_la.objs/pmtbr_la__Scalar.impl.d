lib/la/scalar.ml: Complex Float Format
