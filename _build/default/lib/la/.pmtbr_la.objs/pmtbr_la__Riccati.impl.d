lib/la/riccati.ml: Float Lyap Mat
