lib/la/eig_sym.ml: Array Float Mat
