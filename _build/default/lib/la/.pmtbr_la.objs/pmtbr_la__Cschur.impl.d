lib/la/cschur.ml: Array Cmat Complex Cvec Mat Scalar
