lib/la/mat.mli: Gen_mat
