lib/la/eig_sym.mli: Mat
