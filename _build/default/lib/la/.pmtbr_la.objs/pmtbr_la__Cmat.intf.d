lib/la/cmat.mli: Complex Gen_mat Mat
