lib/la/mat.ml: Array Float Gen_mat Int64 Scalar
