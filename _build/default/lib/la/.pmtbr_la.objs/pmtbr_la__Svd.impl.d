lib/la/svd.ml: Array Float Mat Vec
