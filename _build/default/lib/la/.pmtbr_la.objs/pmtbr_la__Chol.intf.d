lib/la/chol.mli: Mat
