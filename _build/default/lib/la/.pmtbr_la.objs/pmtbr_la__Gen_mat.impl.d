lib/la/gen_mat.ml: Array Float Format Scalar
