lib/la/cmat.ml: Complex Gen_mat Mat Scalar
