(** Continuous algebraic Riccati equations by the Newton-Kleinman
    iteration, each step one {!Lyap} solve.  The substrate for the
    positive-real / LQG balancing extensions of TBR (the paper's cited
    future work). *)

exception Not_converged

val care : ?max_iter:int -> ?tol:float -> a:Mat.t -> g:Mat.t -> q:Mat.t -> unit -> Mat.t
(** [care ~a ~g ~q ()] solves [A^T X + X A - X G X + Q = 0] for the
    stabilising symmetric PSD solution.  [g] and [q] must be symmetric PSD
    and [a] stable (the zero initial guess then stabilises; convergence is
    quadratic).
    @raise Not_converged after [max_iter] (default 60) Newton steps. *)

val care_residual : a:Mat.t -> g:Mat.t -> q:Mat.t -> Mat.t -> float
(** Frobenius norm of the Riccati residual at a candidate solution. *)
