(** Symmetric eigendecomposition by the cyclic Jacobi method. *)

val decompose : Mat.t -> float array * Mat.t
(** [decompose a] for symmetric [a] returns [(values, vectors)] with
    [a = vectors * diag values * vectors^T], eigenvalues sorted descending
    and the columns of [vectors] the matching orthonormal eigenvectors.
    The input is symmetrised first, so slightly asymmetric inputs (from
    accumulated round-off) are accepted. *)

val eigenvalues : Mat.t -> float array
(** Eigenvalues only, descending. *)

val psd_factor : ?tol:float -> Mat.t -> Mat.t
(** Factor of a symmetric positive-semidefinite matrix: [psd_factor x] is a
    matrix [l] of shape [n x rank] with [x ~= l * l^T].  Eigenvalues below
    [tol] (default [1e-14]) relative to the largest — including the small
    negative noise typical of Lyapunov solutions — are dropped.  Used to
    factor Gramians for square-root balanced truncation. *)
