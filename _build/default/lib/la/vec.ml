(* Small helpers on [float array] vectors. *)

let make n v = Array.make n v
let zeros n = Array.make n 0.0
let init = Array.init
let copy = Array.copy

let dot x y =
  assert (Array.length x = Array.length y);
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let add x y = Array.mapi (fun i xi -> xi +. y.(i)) x
let sub x y = Array.mapi (fun i xi -> xi -. y.(i)) x
let scale a x = Array.map (fun v -> a *. v) x

(* y <- y + a*x, in place *)
let axpy a x y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let normalize x =
  let n = norm2 x in
  if n = 0.0 then copy x else scale (1.0 /. n) x

let max_abs_diff x y =
  assert (Array.length x = Array.length y);
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := Float.max !acc (Float.abs (x.(i) -. y.(i)))
  done;
  !acc

let linspace lo hi n =
  assert (n >= 1);
  if n = 1 then [| lo |]
  else Array.init n (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let logspace lo hi n =
  assert (lo > 0.0 && hi > 0.0);
  Array.map exp (linspace (log lo) (log hi) n)

let pp ppf x =
  Format.fprintf ppf "@[<h>[";
  Array.iteri (fun i v -> Format.fprintf ppf (if i = 0 then "%.6g" else "; %.6g") v) x;
  Format.fprintf ppf "]@]"
