(* Complex Schur decomposition A = Q T Q^H (Q unitary, T upper triangular)
   by Householder-Hessenberg reduction followed by explicit Wilkinson-shifted
   QR iteration with Givens rotations.

   Working in complex arithmetic (even for real inputs) avoids the 2x2-block
   bookkeeping of the real Schur form; the Lyapunov/Sylvester solvers in
   [Lyap] then reduce to triangular back-substitutions. *)

exception No_convergence

type t = { q : Cmat.t; (* unitary *) tm : Cmat.t (* upper triangular *) }

let cx re im = { Complex.re; im }
let cadd = Complex.add
let csub = Complex.sub
let cmul = Complex.mul
let cdiv = Complex.div
let conj = Complex.conj
let cabs = Complex.norm

(* Unit-modulus phase of z, or 1 for z = 0. *)
let phase z = if cabs z = 0.0 then Complex.one else Scalar.Cx.scale (1.0 /. cabs z) z

(* Householder reduction to upper Hessenberg form; accumulates Q. *)
let hessenberg (a : Cmat.t) =
  let n = a.Cmat.rows in
  let h = Cmat.copy a in
  let q = Cmat.identity n in
  for k = 0 to n - 3 do
    (* Reflector annihilating h.(k+2 .. n-1, k). *)
    let normx = ref 0.0 in
    for i = k + 1 to n - 1 do
      let v = cabs (Cmat.get h i k) in
      normx := !normx +. (v *. v)
    done;
    let normx = sqrt !normx in
    if normx > 0.0 then begin
      let x0 = Cmat.get h (k + 1) k in
      let alpha = Scalar.Cx.scale (-.normx) (phase x0) in
      (* v = x - alpha e1, normalised so beta = 2 / (v^H v). *)
      let v = Array.make n Complex.zero in
      v.(k + 1) <- csub x0 alpha;
      for i = k + 2 to n - 1 do
        v.(i) <- Cmat.get h i k
      done;
      let vhv = ref 0.0 in
      for i = k + 1 to n - 1 do
        let m = cabs v.(i) in
        vhv := !vhv +. (m *. m)
      done;
      if !vhv > 0.0 then begin
        let beta = 2.0 /. !vhv in
        (* Left: h <- (I - beta v v^H) h, rows k+1.., all columns. *)
        for j = 0 to n - 1 do
          let dot = ref Complex.zero in
          for i = k + 1 to n - 1 do
            dot := cadd !dot (cmul (conj v.(i)) (Cmat.get h i j))
          done;
          let s = Scalar.Cx.scale beta !dot in
          for i = k + 1 to n - 1 do
            Cmat.set h i j (csub (Cmat.get h i j) (cmul s v.(i)))
          done
        done;
        (* Right: h <- h (I - beta v v^H), all rows, columns k+1... *)
        for i = 0 to n - 1 do
          let dot = ref Complex.zero in
          for j = k + 1 to n - 1 do
            dot := cadd !dot (cmul (Cmat.get h i j) v.(j))
          done;
          let s = Scalar.Cx.scale beta !dot in
          for j = k + 1 to n - 1 do
            Cmat.set h i j (csub (Cmat.get h i j) (cmul s (conj v.(j))))
          done
        done;
        (* Accumulate: q <- q (I - beta v v^H). *)
        for i = 0 to n - 1 do
          let dot = ref Complex.zero in
          for j = k + 1 to n - 1 do
            dot := cadd !dot (cmul (Cmat.get q i j) v.(j))
          done;
          let s = Scalar.Cx.scale beta !dot in
          for j = k + 1 to n - 1 do
            Cmat.set q i j (csub (Cmat.get q i j) (cmul s (conj v.(j))))
          done
        done
      end
    end;
    (* Clean the column below the subdiagonal. *)
    for i = k + 2 to n - 1 do
      Cmat.set h i k Complex.zero
    done
  done;
  (h, q)

(* Givens rotation [c s; -conj s, c] (c real) with G [a; b] = [r; 0]. *)
let givens a b =
  let na = cabs a and nb = cabs b in
  if nb = 0.0 then (1.0, Complex.zero)
  else if na = 0.0 then (0.0, Complex.one)
  else begin
    let t = sqrt ((na *. na) +. (nb *. nb)) in
    let c = na /. t in
    let s = Scalar.Cx.scale (1.0 /. t) (cmul (phase a) (conj b)) in
    (c, s)
  end

(* Eigenvalue of [[a, b], [c, d]] closest to d (the Wilkinson shift). *)
let wilkinson_shift a b c d =
  let tr = cadd a d in
  let det = csub (cmul a d) (cmul b c) in
  let half_tr = Scalar.Cx.scale 0.5 tr in
  let disc = Complex.sqrt (csub (cmul half_tr half_tr) det) in
  let l1 = cadd half_tr disc and l2 = csub half_tr disc in
  if cabs (csub l1 d) <= cabs (csub l2 d) then l1 else l2

let decompose (a : Cmat.t) =
  assert (a.Cmat.rows = a.Cmat.cols);
  let n = a.Cmat.rows in
  if n = 0 then { q = Cmat.identity 0; tm = Cmat.identity 0 }
  else begin
    let h, q = hessenberg a in
    let eps = 1e-15 in
    let hi = ref (n - 1) in
    let iter = ref 0 in
    let max_iter = 40 * n in
    while !hi > 0 do
      (* Find the active block [lo, hi]: walk up while subdiagonals are
         non-negligible. *)
      let lo = ref !hi in
      (let continue_up = ref true in
       while !continue_up && !lo > 0 do
         let sub = cabs (Cmat.get h !lo (!lo - 1)) in
         let d = cabs (Cmat.get h (!lo - 1) (!lo - 1)) +. cabs (Cmat.get h !lo !lo) in
         let d = if d = 0.0 then 1.0 else d in
         if sub <= eps *. d then begin
           Cmat.set h !lo (!lo - 1) Complex.zero;
           continue_up := false
         end
         else decr lo
       done);
      if !lo = !hi then decr hi
      else begin
        incr iter;
        if !iter > max_iter then raise No_convergence;
        let lo = !lo and hi_b = !hi in
        (* Occasional exceptional shift to break symmetry-induced cycling. *)
        let mu =
          if !iter mod 30 = 0 then
            cx (cabs (Cmat.get h hi_b (hi_b - 1)) +. cabs (Cmat.get h hi_b hi_b)) 0.0
          else
            wilkinson_shift
              (Cmat.get h (hi_b - 1) (hi_b - 1))
              (Cmat.get h (hi_b - 1) hi_b)
              (Cmat.get h hi_b (hi_b - 1))
              (Cmat.get h hi_b hi_b)
        in
        (* Explicit shifted QR step on [lo, hi_b]. *)
        for k = lo to hi_b do
          Cmat.set h k k (csub (Cmat.get h k k) mu)
        done;
        let rots = Array.make (hi_b - lo) (1.0, Complex.zero) in
        for k = lo to hi_b - 1 do
          let c, s = givens (Cmat.get h k k) (Cmat.get h (k + 1) k) in
          rots.(k - lo) <- (c, s);
          (* Left-apply to rows k, k+1 over columns k..n-1. *)
          for j = k to n - 1 do
            let hkj = Cmat.get h k j and hk1j = Cmat.get h (k + 1) j in
            Cmat.set h k j (cadd (Scalar.Cx.scale c hkj) (cmul s hk1j));
            Cmat.set h (k + 1) j (cadd (cmul (Complex.neg (conj s)) hkj) (Scalar.Cx.scale c hk1j))
          done;
          Cmat.set h (k + 1) k Complex.zero
        done;
        for k = lo to hi_b - 1 do
          let c, s = rots.(k - lo) in
          (* Right-apply G^H to columns k, k+1 over rows 0..min(k+1,hi)+1. *)
          let imax = min (k + 1) hi_b in
          for i = 0 to imax do
            let hik = Cmat.get h i k and hik1 = Cmat.get h i (k + 1) in
            Cmat.set h i k (cadd (Scalar.Cx.scale c hik) (cmul (conj s) hik1));
            Cmat.set h i (k + 1) (cadd (cmul (Complex.neg s) hik) (Scalar.Cx.scale c hik1))
          done;
          for i = 0 to n - 1 do
            let qik = Cmat.get q i k and qik1 = Cmat.get q i (k + 1) in
            Cmat.set q i k (cadd (Scalar.Cx.scale c qik) (cmul (conj s) qik1));
            Cmat.set q i (k + 1) (cadd (cmul (Complex.neg s) qik) (Scalar.Cx.scale c qik1))
          done
        done;
        for k = lo to hi_b do
          Cmat.set h k k (cadd (Cmat.get h k k) mu)
        done
      end
    done;
    (* Zero out the strictly-lower triangle left by deflations. *)
    for i = 0 to n - 1 do
      for j = 0 to i - 1 do
        Cmat.set h i j Complex.zero
      done
    done;
    { q; tm = h }
  end

let eigenvalues { tm; _ } = Array.init tm.Cmat.rows (fun i -> Cmat.get tm i i)

(* Eigenvector of the triangular factor for the eigenvalue at diagonal
   position [i], mapped back through Q.  Near-equal diagonal entries are
   perturbed to keep the back-substitution bounded. *)
let eigenvector { q; tm } i =
  let n = tm.Cmat.rows in
  let lambda = Cmat.get tm i i in
  let y = Array.make n Complex.zero in
  y.(i) <- Complex.one;
  for k = i - 1 downto 0 do
    let rhs = ref Complex.zero in
    for j = k + 1 to i do
      rhs := cadd !rhs (cmul (Cmat.get tm k j) y.(j))
    done;
    let d = csub (Cmat.get tm k k) lambda in
    let d =
      if cabs d < 1e-13 *. (1.0 +. cabs lambda) then
        cadd d (cx (1e-13 *. (1.0 +. cabs lambda)) 0.0)
      else d
    in
    y.(k) <- cdiv (Complex.neg !rhs) d
  done;
  let v = Cmat.mv q y in
  let nrm = Cvec.norm2 v in
  if nrm > 0.0 then Cvec.scale (cx (1.0 /. nrm) 0.0) v else v

(* Decompose a real matrix, complexifying first. *)
let of_real (a : Mat.t) = decompose (Cmat.of_mat a)
