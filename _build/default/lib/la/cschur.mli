(** Complex Schur decomposition [A = Q T Q^H] by Householder-Hessenberg
    reduction and Wilkinson-shifted QR iteration.

    Working in complex arithmetic even for real inputs avoids the 2x2-block
    bookkeeping of the real Schur form; the Lyapunov/Sylvester solvers in
    {!Lyap} then reduce to triangular back-substitutions. *)

exception No_convergence
(** Raised if the QR iteration exceeds its iteration budget (does not occur
    on the matrix classes exercised here; present as a safety net). *)

type t = {
  q : Cmat.t;  (** unitary *)
  tm : Cmat.t;  (** upper triangular, eigenvalues on the diagonal *)
}

val decompose : Cmat.t -> t
(** Schur decomposition of a square complex matrix. *)

val of_real : Mat.t -> t
(** [of_real a] is [decompose] of the complexified [a]. *)

val eigenvalues : t -> Complex.t array
(** Diagonal of the triangular factor (unsorted). *)

val eigenvector : t -> int -> Complex.t array
(** [eigenvector s i] is a unit eigenvector for the eigenvalue at diagonal
    position [i], obtained by triangular back-substitution and mapped back
    through [Q].  Nearly repeated eigenvalues are handled by a small
    regularising perturbation. *)
