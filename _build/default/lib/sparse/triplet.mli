(** Coordinate-format accumulator used while stamping circuit matrices.
    Dimensions grow automatically with the largest index seen; entries at
    the same (row, col) are summed on conversion to CSC. *)

type t

val create : int -> int -> t
(** [create rows cols] is an empty accumulator with initial dimensions. *)

val add : t -> int -> int -> float -> unit
(** [add t i j v] accumulates [v] at position [(i, j)], growing the
    dimensions if needed.  Zero values still grow the dimensions but store
    no entry. *)

val entries : t -> (int * int * float) list
(** All stored entries, unmerged. *)

val dims : t -> int * int
(** Current (rows, cols). *)

val nnz : t -> int
(** Number of stored (unmerged) entries. *)

val copy : t -> t
(** Snapshot; further [add]s to either side do not affect the other. *)

val axpby : float -> t -> float -> t -> t
(** [axpby alpha a beta b] accumulates [alpha*a + beta*b]. *)

val to_dense : t -> Pmtbr_la.Mat.t
(** Dense matrix with duplicates summed. *)

val transpose : t -> t
(** Transposed accumulator. *)

val mv : t -> float array -> float array
(** Matrix-vector product straight off the triplets. *)

val mv_transposed : t -> float array -> float array
(** Transposed matrix-vector product. *)

val mul_dense : t -> Pmtbr_la.Mat.t -> Pmtbr_la.Mat.t
(** [mul_dense t m] is the dense product [t * m]; used to form [E*V] during
    congruence projection. *)
