(** Factorisation of the shifted pencil [(sE - A)] for complex [s],
    assembled from real triplet accumulators.  This is the inner kernel of
    PMTBR: one complex sparse factorisation per frequency sample. *)

type pencil
(** The pair (E, A) with an agreed square dimension. *)

val pencil : e:Triplet.t -> a:Triplet.t -> pencil
(** Bundle the two stamped matrices; the pencil dimension is the largest of
    their dimensions. *)

type factor = Sparse_lu.C.factor
(** A complex sparse LU of [(sE - A)] at one shift. *)

val factorize : ?ordering:Ordering.scheme -> pencil -> Complex.t -> factor
(** [factorize p s] factors [(sE - A)] with the given fill-reducing
    ordering (default {!Ordering.Rcm}). *)

val solve_dense : factor -> Pmtbr_la.Mat.t -> Complex.t array array
(** [solve_dense f b] solves [(sE - A) X = B] for a dense real [B]; one
    complex column per column of [B]. *)

val solve_hermitian_dense : factor -> Pmtbr_la.Mat.t -> Complex.t array array
(** [solve_hermitian_dense f b] solves [(sE - A)^H X = B], reusing the same
    factorisation; used for the observability samples of the cross-Gramian
    method. *)
