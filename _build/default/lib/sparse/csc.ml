(* Compressed-sparse-column matrices over an arbitrary scalar, assembled
   from coordinate entries (duplicates summed, zeros dropped). *)

open Pmtbr_la

module type S = sig
  type elt

  type t = {
    rows : int;
    cols : int;
    colptr : int array; (* length cols+1 *)
    rowind : int array; (* length nnz, ascending within each column *)
    values : elt array;
  }

  val of_entries : int -> int -> (int * int * elt) list -> t
  val nnz : t -> int
  val get : t -> int -> int -> elt
  val mv : t -> elt array -> elt array
  val mv_transposed : t -> elt array -> elt array
  val transpose : t -> t
  val iter_col : t -> int -> (int -> elt -> unit) -> unit
  val to_entries : t -> (int * int * elt) list
  val map : (elt -> elt) -> t -> t
  val scale : elt -> t -> t
  val add : t -> t -> t
end

module Make (K : Scalar.S) : S with type elt = K.t = struct
  type elt = K.t

  type t = {
    rows : int;
    cols : int;
    colptr : int array;
    rowind : int array;
    values : elt array;
  }

  let of_entries rows cols entries =
    let arr = Array.of_list entries in
    Array.iter (fun (i, j, _) -> assert (i >= 0 && i < rows && j >= 0 && j < cols)) arr;
    Array.sort (fun (i1, j1, _) (i2, j2, _) -> if j1 <> j2 then compare j1 j2 else compare i1 i2) arr;
    (* merge duplicates *)
    let merged = ref [] and count = ref 0 in
    Array.iter
      (fun (i, j, v) ->
        match !merged with
        | (i', j', v') :: rest when i = i' && j = j' -> merged := (i, j, K.add v v') :: rest
        | _ ->
            merged := (i, j, v) :: !merged;
            incr count)
      arr;
    let merged = Array.of_list (List.rev !merged) in
    let n = Array.length merged in
    let colptr = Array.make (cols + 1) 0 in
    Array.iter (fun (_, j, _) -> colptr.(j + 1) <- colptr.(j + 1) + 1) merged;
    for j = 0 to cols - 1 do
      colptr.(j + 1) <- colptr.(j + 1) + colptr.(j)
    done;
    let rowind = Array.make n 0 and values = Array.make n K.zero in
    Array.iteri
      (fun k (i, _, v) ->
        rowind.(k) <- i;
        values.(k) <- v)
      merged;
    { rows; cols; colptr; rowind; values }

  let nnz t = Array.length t.rowind

  let get t i j =
    let lo = ref t.colptr.(j) and hi = ref (t.colptr.(j + 1) - 1) in
    let res = ref K.zero in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if t.rowind.(mid) = i then begin
        res := t.values.(mid);
        lo := !hi + 1
      end
      else if t.rowind.(mid) < i then lo := mid + 1
      else hi := mid - 1
    done;
    !res

  let mv t x =
    assert (Array.length x = t.cols);
    let y = Array.make t.rows K.zero in
    for j = 0 to t.cols - 1 do
      let xj = x.(j) in
      if not (K.is_zero xj) then
        for k = t.colptr.(j) to t.colptr.(j + 1) - 1 do
          let i = t.rowind.(k) in
          y.(i) <- K.add y.(i) (K.mul t.values.(k) xj)
        done
    done;
    y

  let mv_transposed t x =
    assert (Array.length x = t.rows);
    let y = Array.make t.cols K.zero in
    for j = 0 to t.cols - 1 do
      let acc = ref K.zero in
      for k = t.colptr.(j) to t.colptr.(j + 1) - 1 do
        acc := K.add !acc (K.mul t.values.(k) x.(t.rowind.(k)))
      done;
      y.(j) <- !acc
    done;
    y

  let to_entries t =
    let acc = ref [] in
    for j = t.cols - 1 downto 0 do
      for k = t.colptr.(j + 1) - 1 downto t.colptr.(j) do
        acc := (t.rowind.(k), j, t.values.(k)) :: !acc
      done
    done;
    !acc

  let transpose t =
    of_entries t.cols t.rows (List.map (fun (i, j, v) -> (j, i, v)) (to_entries t))

  let iter_col t j f =
    for k = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      f t.rowind.(k) t.values.(k)
    done

  let map f t = { t with values = Array.map f t.values }
  let scale s t = map (K.mul s) t

  let add a b =
    assert (a.rows = b.rows && a.cols = b.cols);
    of_entries a.rows a.cols (to_entries a @ to_entries b)
end

module R = Make (Scalar.Float)
module C = Make (Scalar.Cx)

(* Real CSC from a triplet accumulator. *)
let of_triplet (t : Triplet.t) =
  let rows, cols = Triplet.dims t in
  R.of_entries rows cols (Triplet.entries t)

(* Complex CSC [alpha*a + beta*b] from two real triplet accumulators with the
   same dimensions: the (sE - A) assembly. *)
let complex_combination ~(alpha : Complex.t) (a : Triplet.t) ~(beta : Complex.t) (b : Triplet.t) =
  let rows_a, cols_a = Triplet.dims a and rows_b, cols_b = Triplet.dims b in
  let rows = max rows_a rows_b and cols = max cols_a cols_b in
  let entries =
    List.rev_append
      (List.rev_map (fun (i, j, v) -> (i, j, Scalar.Cx.scale v alpha)) (Triplet.entries a))
      (List.map (fun (i, j, v) -> (i, j, Scalar.Cx.scale v beta)) (Triplet.entries b))
  in
  C.of_entries rows cols entries

let to_dense (m : R.t) =
  let d = Mat.create m.R.rows m.R.cols in
  for j = 0 to m.R.cols - 1 do
    R.iter_col m j (fun i v -> Mat.update d i j (fun x -> x +. v))
  done;
  d

let to_dense_complex (m : C.t) =
  let d = Cmat.create m.C.rows m.C.cols in
  for j = 0 to m.C.cols - 1 do
    C.iter_col m j (fun i v -> Cmat.update d i j (fun x -> Complex.add x v))
  done;
  d
