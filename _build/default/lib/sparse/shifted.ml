(* Factorisation of the shifted pencil (s E - A) for complex s, assembled
   from real triplet accumulators.  This is the inner kernel of PMTBR: one
   complex sparse factorisation per frequency sample. *)

type pencil = { e : Triplet.t; a : Triplet.t; n : int }

let pencil ~e ~a =
  let re, ce = Triplet.dims e and ra, ca = Triplet.dims a in
  let n = max (max re ce) (max ra ca) in
  assert (re <= n && ce <= n && ra <= n && ca <= n);
  { e; a; n }

type factor = Sparse_lu.C.factor

(* Factor (s E - A). *)
let factorize ?(ordering = Ordering.Rcm) (p : pencil) (s : Complex.t) : factor =
  let m = Csc.complex_combination ~alpha:s p.e ~beta:{ Complex.re = -1.0; im = 0.0 } p.a in
  (* pad to n x n in case trailing rows/cols carry no entries *)
  let m =
    if m.Csc.C.rows = p.n && m.Csc.C.cols = p.n then m
    else Csc.C.of_entries p.n p.n (Csc.C.to_entries m)
  in
  Sparse_lu.C.factorize ~ordering m

(* Solve (sE - A) X = B for a dense real B; returns the complex columns. *)
let solve_dense (f : factor) (b : Pmtbr_la.Mat.t) =
  let n = b.Pmtbr_la.Mat.rows in
  Array.init b.Pmtbr_la.Mat.cols (fun j ->
      let rhs = Array.init n (fun i -> { Complex.re = Pmtbr_la.Mat.get b i j; im = 0.0 }) in
      Sparse_lu.C.solve_vec f rhs)

(* Solve (sE - A)^H X = B, used for the observability samples of the
   cross-Gramian method: (sE - A)^H = conj(s) E^T - A^T for real E, A. *)
let solve_hermitian_dense (f : factor) (b : Pmtbr_la.Mat.t) =
  let n = b.Pmtbr_la.Mat.rows in
  Array.init b.Pmtbr_la.Mat.cols (fun j ->
      let rhs = Array.init n (fun i -> { Complex.re = Pmtbr_la.Mat.get b i j; im = 0.0 }) in
      (* (sE-A)^H x = b  <=>  conj((sE-A)^T conj(x)) = b *)
      let rhs_conj = Array.map Complex.conj rhs in
      let y = Sparse_lu.C.solve_transposed_vec f rhs_conj in
      Array.map Complex.conj y)
