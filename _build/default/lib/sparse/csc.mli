(** Compressed-sparse-column matrices over an arbitrary scalar, assembled
    from coordinate entries (duplicates summed). *)

open Pmtbr_la

module type S = sig
  type elt

  type t = {
    rows : int;
    cols : int;
    colptr : int array;  (** length cols+1 *)
    rowind : int array;  (** length nnz, ascending within each column *)
    values : elt array;
  }

  val of_entries : int -> int -> (int * int * elt) list -> t
  (** Assemble from coordinates; duplicate positions are summed. *)

  val nnz : t -> int
  val get : t -> int -> int -> elt
  (** Binary search within the column; zero when absent. *)

  val mv : t -> elt array -> elt array
  val mv_transposed : t -> elt array -> elt array
  val transpose : t -> t
  val iter_col : t -> int -> (int -> elt -> unit) -> unit
  val to_entries : t -> (int * int * elt) list
  val map : (elt -> elt) -> t -> t
  val scale : elt -> t -> t
  val add : t -> t -> t
end

module Make (K : Scalar.S) : S with type elt = K.t

module R : S with type elt = float and type t = Make(Scalar.Float).t
module C : S with type elt = Complex.t and type t = Make(Scalar.Cx).t

val of_triplet : Triplet.t -> R.t
(** Real CSC from a triplet accumulator. *)

val complex_combination : alpha:Complex.t -> Triplet.t -> beta:Complex.t -> Triplet.t -> C.t
(** Complex CSC [alpha*a + beta*b] from two real triplet accumulators: the
    [(sE - A)] assembly. *)

val to_dense : R.t -> Mat.t
val to_dense_complex : C.t -> Cmat.t
