(** Left-looking sparse LU with partial pivoting (Gilbert-Peierls), generic
    over the scalar — the workhorse behind every [(sE - A)] solve in PMTBR.
    The nonzero pattern of each column's triangular solve is found by
    depth-first search on the graph of the computed L columns, so the
    numeric work is proportional to the arithmetic performed. *)

open Pmtbr_la

module type S = sig
  type elt

  module M : Csc.S with type elt = elt

  exception Singular of int
  (** Raised with the failing column when no nonzero pivot exists. *)

  type factor
  (** A computed factorisation [P A Q = L U]. *)

  val factorize : ?ordering:Ordering.scheme -> M.t -> factor
  (** Factor a square CSC matrix with the given column pre-ordering
      (default {!Ordering.Natural}) and partial row pivoting. *)

  val nnz : factor -> int
  (** Nonzeros in L + U (including the unit diagonal), a fill measure. *)

  val solve_vec : factor -> elt array -> elt array
  (** Solve [A x = b]. *)

  val solve_transposed_vec : factor -> elt array -> elt array
  (** Solve [A^T x = b] with the same factorisation. *)

  val solve_dense : factor -> M.t -> elt array array
  (** Solve for each column of a sparse right-hand side. *)
end

module Make (K : Scalar.S) : S with type elt = K.t

module R : S with type elt = float and module M = Csc.R
module C : S with type elt = Complex.t and module M = Csc.C
