(* Coordinate-format accumulator used while stamping circuit matrices.
   Entries at the same (row, col) are summed when converting to CSC. *)

type t = {
  mutable rows : int;
  mutable cols : int;
  mutable entries : (int * int * float) list;
  mutable count : int;
}

let create rows cols = { rows; cols; entries = []; count = 0 }

let add t i j v =
  assert (i >= 0 && j >= 0);
  if i >= t.rows then t.rows <- i + 1;
  if j >= t.cols then t.cols <- j + 1;
  if v <> 0.0 then begin
    t.entries <- (i, j, v) :: t.entries;
    t.count <- t.count + 1
  end

let entries t = t.entries
let dims t = (t.rows, t.cols)
let nnz t = t.count

let copy t = { t with entries = t.entries }

(* Union of two accumulators with scalar weights: alpha*a + beta*b. *)
let axpby alpha a beta b =
  let out = create (max a.rows b.rows) (max a.cols b.cols) in
  List.iter (fun (i, j, v) -> add out i j (alpha *. v)) a.entries;
  List.iter (fun (i, j, v) -> add out i j (beta *. v)) b.entries;
  out

let to_dense t =
  let m = Pmtbr_la.Mat.create t.rows t.cols in
  List.iter (fun (i, j, v) -> Pmtbr_la.Mat.update m i j (fun x -> x +. v)) t.entries;
  m

let transpose t =
  { t with
    rows = t.cols;
    cols = t.rows;
    entries = List.map (fun (i, j, v) -> (j, i, v)) t.entries }

(* Matrix-vector product straight off the triplets (no assembly needed). *)
let mv t x =
  assert (Array.length x = t.cols);
  let y = Array.make t.rows 0.0 in
  List.iter (fun (i, j, v) -> y.(i) <- y.(i) +. (v *. x.(j))) t.entries;
  y

let mv_transposed t x =
  assert (Array.length x = t.rows);
  let y = Array.make t.cols 0.0 in
  List.iter (fun (i, j, v) -> y.(j) <- y.(j) +. (v *. x.(i))) t.entries;
  y

(* Dense product T * M for dense M (used to form E*V etc. during projection). *)
let mul_dense t (m : Pmtbr_la.Mat.t) =
  assert (t.cols = m.Pmtbr_la.Mat.rows);
  let out = Pmtbr_la.Mat.create t.rows m.Pmtbr_la.Mat.cols in
  List.iter
    (fun (i, j, v) ->
      for c = 0 to m.Pmtbr_la.Mat.cols - 1 do
        Pmtbr_la.Mat.update out i c (fun x -> x +. (v *. Pmtbr_la.Mat.get m j c))
      done)
    t.entries;
  out
