lib/sparse/shifted.mli: Complex Ordering Pmtbr_la Sparse_lu Triplet
