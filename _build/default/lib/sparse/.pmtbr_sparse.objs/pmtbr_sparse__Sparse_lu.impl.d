lib/sparse/sparse_lu.ml: Array Csc Ordering Pmtbr_la Scalar
