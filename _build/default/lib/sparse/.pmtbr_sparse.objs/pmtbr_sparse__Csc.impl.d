lib/sparse/csc.ml: Array Cmat Complex List Mat Pmtbr_la Scalar Triplet
