lib/sparse/csc.mli: Cmat Complex Mat Pmtbr_la Scalar Triplet
