lib/sparse/ordering.ml: Array Int List Queue Set
