lib/sparse/triplet.ml: Array List Pmtbr_la
