lib/sparse/ordering.mli:
