lib/sparse/sparse_lu.mli: Complex Csc Ordering Pmtbr_la Scalar
