lib/sparse/shifted.ml: Array Complex Csc Ordering Pmtbr_la Sparse_lu Triplet
