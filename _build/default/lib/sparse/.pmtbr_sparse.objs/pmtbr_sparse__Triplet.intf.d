lib/sparse/triplet.mli: Pmtbr_la
