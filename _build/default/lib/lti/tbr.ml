(* Exact truncated balanced realisation (TBR), the baseline the paper's
   method approximates.  Implemented with the square-root method: factor
   both Gramians, SVD the product of the factors, build the oblique
   balancing projection.  The Hankel singular values come out of the SVD and
   give Glover's error bound 2 * sum of the truncated tail. *)

open Pmtbr_la

type t = {
  rom : Dss.t; (* reduced standard-form model *)
  hsv : float array; (* all Hankel singular values, descending *)
  order : int;
}

(* Glover bound for truncating at [order]: 2 * sum_{i>order} sigma_i. *)
let error_bound hsv order =
  let acc = ref 0.0 in
  Array.iteri (fun i s -> if i >= order then acc := !acc +. s) hsv;
  2.0 *. !acc

(* Smallest order whose Glover bound is below [tol]. *)
let order_for_tolerance hsv tol =
  let n = Array.length hsv in
  let rec search q = if q >= n then n else if error_bound hsv q <= tol then q else search (q + 1) in
  search 0

let hankel_singular_values ?k ~(a : Mat.t) ~(b : Mat.t) ~(c : Mat.t) () =
  let x = Gramian.controllability ?k ~a ~b () in
  let y = Gramian.observability ~a ~c () in
  let l = Eig_sym.psd_factor x in
  let m = Eig_sym.psd_factor y in
  Svd.values (Mat.mul (Mat.transpose m) l)

(* Hankel singular values for several B matrices, factoring A and the
   observability Gramian once (Fig. 3). *)
let hsv_family ~(a : Mat.t) ~(c_of_b : Mat.t -> Mat.t) (bs : Mat.t list) =
  let fact = Lyap.factor a in
  let fact_t = Lyap.factor (Mat.transpose a) in
  List.map
    (fun b ->
      let c = c_of_b b in
      let x = Lyap.solve_with fact (Mat.mul b (Mat.transpose b)) in
      let y = Lyap.solve_with fact_t (Mat.mul (Mat.transpose c) c) in
      let l = Eig_sym.psd_factor x in
      let m = Eig_sym.psd_factor y in
      Svd.values (Mat.mul (Mat.transpose m) l))
    bs

(* Balanced truncation of a standard-form model.  Exactly one of [order] or
   [tol] chooses the reduced size.  [k] is the optional input correlation
   matrix for input-correlated TBR. *)
let reduce ?order ?tol ?k ~(a : Mat.t) ~(b : Mat.t) ~(c : Mat.t) () =
  let x = Gramian.controllability ?k ~a ~b () in
  let y = Gramian.observability ~a ~c () in
  let l = Eig_sym.psd_factor x in
  let m = Eig_sym.psd_factor y in
  let { Svd.u; sigma; v } = Svd.decompose (Mat.mul (Mat.transpose m) l) in
  let max_rank =
    (* numerically meaningful part of the spectrum *)
    let smax = if Array.length sigma = 0 then 0.0 else sigma.(0) in
    let r = ref 0 in
    Array.iter (fun s -> if s > 1e-13 *. smax && s > 0.0 then incr r) sigma;
    !r
  in
  let q =
    match (order, tol) with
    | Some q, None -> min q max_rank
    | None, Some t -> min (order_for_tolerance sigma t) max_rank
    | None, None -> max_rank
    | Some _, Some _ -> invalid_arg "Tbr.reduce: give either ~order or ~tol"
  in
  let q = max q 1 in
  (* T_r = L V_q S_q^{-1/2}, T_l = M U_q S_q^{-1/2} *)
  let scale_cols mat cols =
    Mat.init mat.Mat.rows q (fun i j -> Mat.get mat i j *. cols.(j))
  in
  let inv_sqrt = Array.init q (fun i -> 1.0 /. sqrt sigma.(i)) in
  let t_r = scale_cols (Mat.mul l (Mat.sub_cols v 0 q)) inv_sqrt in
  let t_l = scale_cols (Mat.mul m (Mat.sub_cols u 0 q)) inv_sqrt in
  let a_r = Mat.mul (Mat.transpose t_l) (Mat.mul a t_r) in
  let b_r = Mat.mul (Mat.transpose t_l) b in
  let c_r = Mat.mul c t_r in
  { rom = Dss.of_standard ~a:a_r ~b:b_r ~c:c_r; hsv = sigma; order = q }

(* Balanced truncation of a descriptor system with invertible E. *)
let reduce_dss ?order ?tol ?k sys =
  let a, b, c = Dss.to_standard sys in
  reduce ?order ?tol ?k ~a ~b ~c ()

let hsv_dss sys =
  let a, b, c = Dss.to_standard sys in
  hankel_singular_values ~a ~b ~c ()
