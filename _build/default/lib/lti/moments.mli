(** Moments of the transfer function about an expansion point,

    [m_k = C ((s0 E - A)^{-1} E)^k (s0 E - A)^{-1} B].

    Moment matching is the defining property of the Krylov baselines; this
    module makes it checkable, and moment comparison is itself a quick
    model-validation tool. *)

val at : Dss.t -> s0:Complex.t -> count:int -> Pmtbr_la.Cmat.t list
(** First [count] block moments, each an outputs x inputs complex matrix. *)

val mismatch : Dss.t -> Dss.t -> s0:Complex.t -> count:int -> float
(** Worst relative entrywise mismatch of the first [count] moments of two
    systems. *)
