(* Transient simulation of descriptor systems by the trapezoidal rule:

     (E - h/2 A) x_{k+1} = (E + h/2 A) x_k + h/2 B (u_k + u_{k+1})

   The left-hand matrix is factored once (sparse LU for full models, dense
   LU for reduced ones), so each step costs one matvec + one solve: the
   usage pattern of a circuit simulator's linear transient analysis. *)

open Pmtbr_la
open Pmtbr_sparse

type result = {
  times : float array;
  outputs : Mat.t; (* p_out x steps *)
  states : Mat.t option; (* n x steps, only when requested *)
}

type stepper = {
  n : int;
  advance : float array -> float array -> float array -> float array;
      (* advance x u_k u_{k+1} -> x_{k+1} *)
}

let make_stepper sys ~dt =
  let h2 = dt /. 2.0 in
  let b = Dss.b_matrix sys in
  match sys with
  | Dss.Sparse { e; a; n; _ } ->
      let lhs = Triplet.axpby 1.0 e (-.h2) a in
      (* pad to n x n *)
      let lhs_csc =
        let m = Csc.of_triplet lhs in
        if m.Csc.R.rows = n && m.Csc.R.cols = n then m
        else Csc.R.of_entries n n (Csc.R.to_entries m)
      in
      let f = Sparse_lu.R.factorize ~ordering:Ordering.Rcm lhs_csc in
      let advance x u0 u1 =
        let ex = Triplet.mv e x in
        let ax = Triplet.mv a x in
        let rhs = Array.make n 0.0 in
        for i = 0 to Array.length ex - 1 do
          rhs.(i) <- ex.(i) +. (h2 *. ax.(i))
        done;
        let bu = Mat.mv b (Array.mapi (fun i u -> h2 *. (u +. u1.(i))) u0) in
        for i = 0 to n - 1 do
          rhs.(i) <- rhs.(i) +. bu.(i)
        done;
        Sparse_lu.R.solve_vec f rhs
      in
      { n; advance }
  | Dss.Dense { e; a; _ } ->
      let n = a.Mat.rows in
      let lhs = Mat.sub e (Mat.scale h2 a) in
      let rhs_m = Mat.add e (Mat.scale h2 a) in
      let f = Mat.lu lhs in
      let advance x u0 u1 =
        let rhs = Mat.mv rhs_m x in
        let bu = Mat.mv b (Array.mapi (fun i u -> h2 *. (u +. u1.(i))) u0) in
        for i = 0 to n - 1 do
          rhs.(i) <- rhs.(i) +. bu.(i)
        done;
        Mat.lu_solve_vec f rhs
      in
      { n; advance }

(* Simulate from rest.  [u t] gives the input vector at time t. *)
let simulate ?(keep_states = false) ?(x0 : float array option) sys ~t0 ~t1 ~dt
    ~(u : float -> float array) =
  assert (t1 > t0 && dt > 0.0);
  let stepper = make_stepper sys ~dt in
  let steps = int_of_float (Float.ceil ((t1 -. t0) /. dt)) + 1 in
  let c = Dss.c_matrix sys in
  let p_out = c.Mat.rows in
  let times = Array.init steps (fun k -> t0 +. (dt *. float_of_int k)) in
  let outputs = Mat.create p_out steps in
  let states = if keep_states then Some (Mat.create stepper.n steps) else None in
  let x = ref (match x0 with Some x -> Array.copy x | None -> Array.make stepper.n 0.0) in
  let record k =
    let y = Mat.mv c !x in
    Mat.set_col outputs k y;
    match states with Some s -> Mat.set_col s k !x | None -> ()
  in
  record 0;
  for k = 1 to steps - 1 do
    let u0 = u times.(k - 1) and u1 = u times.(k) in
    x := stepper.advance !x u0 u1;
    record k
  done;
  { times; outputs; states }

(* Worst-case absolute difference between one output row of two results on
   the same time grid. *)
let output_error ?(row = 0) (r1 : result) (r2 : result) =
  assert (Array.length r1.times = Array.length r2.times);
  let worst = ref 0.0 in
  for k = 0 to Array.length r1.times - 1 do
    worst := Float.max !worst (Float.abs (Mat.get r1.outputs row k -. Mat.get r2.outputs row k))
  done;
  !worst

let output_rms_error ?(row = 0) (r1 : result) (r2 : result) =
  let n = Array.length r1.times in
  assert (n = Array.length r2.times);
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    let d = Mat.get r1.outputs row k -. Mat.get r2.outputs row k in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)
