(* Gramians of standard-form systems (E = I), with optional input
   correlation: the paper's Section IV-C replaces B B^T by B K B^T. *)

open Pmtbr_la

(* A X + X A^T + B B^T = 0. *)
let controllability ?(k : Mat.t option) ~(a : Mat.t) ~(b : Mat.t) () =
  let q =
    match k with
    | None -> Mat.mul b (Mat.transpose b)
    | Some k -> Mat.mul b (Mat.mul k (Mat.transpose b))
  in
  Lyap.solve a (Mat.symmetrize q)

(* A^T Y + Y A + C^T C = 0. *)
let observability ~(a : Mat.t) ~(c : Mat.t) () =
  Lyap.solve (Mat.transpose a) (Mat.mul (Mat.transpose c) c)

(* Cross Gramian A X + X A + B C = 0 (square systems). *)
let cross ~(a : Mat.t) ~(b : Mat.t) ~(c : Mat.t) () = Lyap.solve_cross a (Mat.mul b c)

(* Controllability Gramians for several input matrices with one
   factorisation of A (Fig. 3's sweep over port counts). *)
let controllability_family ~(a : Mat.t) (bs : Mat.t list) =
  let fact = Lyap.factor a in
  List.map (fun b -> Lyap.solve_with fact (Mat.mul b (Mat.transpose b))) bs
