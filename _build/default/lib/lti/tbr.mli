(** Exact truncated balanced realisation (TBR), the baseline that PMTBR
    approximates.  Square-root method: factor both Gramians, SVD the
    product of the factors, build the oblique balancing projection.  The
    Hankel singular values fall out of the SVD and give Glover's error
    bound [2 * sum of the truncated tail]. *)

open Pmtbr_la

type t = {
  rom : Dss.t;  (** reduced standard-form model *)
  hsv : float array;  (** all Hankel singular values, descending *)
  order : int;  (** reduced order actually used *)
}

val error_bound : float array -> int -> float
(** [error_bound hsv q] is Glover's bound [2 * sum_{i >= q} hsv_i] on the
    H-infinity error of the order-[q] truncation. *)

val order_for_tolerance : float array -> float -> int
(** Smallest order whose Glover bound is at most the tolerance. *)

val hankel_singular_values : ?k:Mat.t -> a:Mat.t -> b:Mat.t -> c:Mat.t -> unit -> float array
(** Hankel singular values of a standard-form system; [k] is the optional
    input correlation matrix. *)

val hsv_family : a:Mat.t -> c_of_b:(Mat.t -> Mat.t) -> Mat.t list -> float array list
(** Hankel singular values for several input matrices, factoring [A] (and
    [A^T]) once; [c_of_b] derives each output map from the input map
    (e.g. [Mat.transpose] for impedance-driven networks). *)

val reduce : ?order:int -> ?tol:float -> ?k:Mat.t -> a:Mat.t -> b:Mat.t -> c:Mat.t -> unit -> t
(** Balanced truncation of a standard-form model.  Give exactly one of
    [order] (target size) or [tol] (Glover-bound tolerance); with neither,
    the model is truncated only at numerical rank.  [k] selects
    input-correlated TBR. *)

val reduce_dss : ?order:int -> ?tol:float -> ?k:Mat.t -> Dss.t -> t
(** Balanced truncation of a descriptor system with invertible E (converted
    through {!Dss.to_standard}). *)

val hsv_dss : Dss.t -> float array
(** Hankel singular values of a descriptor system with invertible E. *)
