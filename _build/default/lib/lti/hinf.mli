(** H-infinity norm computation by Hamiltonian-eigenvalue bisection
    (Boyd-Balakrishnan / Bruinsma-Steinbuch): [gamma > ||H||_inf] exactly
    when the associated Hamiltonian matrix has no purely imaginary
    eigenvalues.  Turns the Glover bound of balanced truncation into an
    exactly checkable statement. *)

exception Unstable
(** Raised when the system has an eigenvalue in the closed right half
    plane: the H-infinity norm is unbounded. *)

val peak_gain : a:Pmtbr_la.Mat.t -> b:Pmtbr_la.Mat.t -> c:Pmtbr_la.Mat.t -> float -> float
(** Largest singular value of [C (jwI - A)^{-1} B] at one frequency. *)

val norm : ?rtol:float -> a:Pmtbr_la.Mat.t -> b:Pmtbr_la.Mat.t -> c:Pmtbr_la.Mat.t ->
  unit -> float
(** H-infinity norm of a stable standard-form system (D = 0), to relative
    accuracy [rtol] (default [1e-4]).
    @raise Unstable on systems with right-half-plane poles. *)

val error_system : Dss.t -> Dss.t -> Pmtbr_la.Mat.t * Pmtbr_la.Mat.t * Pmtbr_la.Mat.t
(** Standard-form realisation of [H1 - H2] (block-diagonal A, stacked B,
    [C1, -C2]); both systems must convert through {!Dss.to_standard}. *)

val error_norm : ?rtol:float -> Dss.t -> Dss.t -> float
(** True H-infinity norm of the difference of two systems. *)
