(** LQG (closed-loop) balanced truncation (Jonckheere-Silverman): balance
    the stabilising control/filter Riccati solutions instead of the
    open-loop Gramians, keeping the states that matter when the model sits
    inside a feedback loop.  The Riccati-balancing structure the paper
    points to as future work (positive-real TBR uses the same machinery
    with the positive-real Riccati equations). *)

open Pmtbr_la

type t = {
  rom : Dss.t;
  char_values : float array;  (** LQG characteristic values, descending *)
  order : int;
}

val characteristic_values : a:Mat.t -> b:Mat.t -> c:Mat.t -> unit -> float array
(** The LQG analogue of the Hankel singular values. *)

val reduce : ?order:int -> ?tol:float -> a:Mat.t -> b:Mat.t -> c:Mat.t -> unit -> t
(** LQG-balanced truncation of a stable standard-form model; [order] or
    relative characteristic-value [tol] (default [1e-10]) pick the size. *)

val reduce_dss : ?order:int -> ?tol:float -> Dss.t -> t
(** Descriptor wrapper through {!Dss.to_standard}. *)
