(* Moments of the transfer function about an expansion point:

     H(s) = sum_k m_k (s0 - s)^k,
     m_k  = C [(s0 E - A)^{-1} E]^k (s0 E - A)^{-1} B

   Moment matching is the defining property of the Krylov baselines (PRIMA
   matches the first [moments] block moments); this module makes the
   property checkable, and moment comparison is itself a quick model
   validation tool. *)

open Pmtbr_la

(* First [count] block moments of [sys] at the (complex) point [s0];
   each is an outputs x inputs complex matrix. *)
let at sys ~(s0 : Complex.t) ~count =
  assert (count >= 1);
  let f = Dss.factor_shifted sys s0 in
  let b = Dss.b_matrix sys in
  let c = Dss.c_matrix sys in
  let p_out = c.Mat.rows in
  let cols_to_cmat (cols : Complex.t array array) =
    Cmat.init (Array.length cols.(0)) (Array.length cols) (fun i j -> cols.(j).(i))
  in
  (* complex n x p iterate v_k = [(s0 E - A)^{-1} E]^k (s0 E - A)^{-1} B *)
  let apply_e_complex (v : Cmat.t) =
    let re = Dss.apply_e sys (Cmat.re v) in
    let im = Dss.apply_e sys (Cmat.im v) in
    Cmat.init re.Mat.rows re.Mat.cols (fun i j ->
        { Complex.re = Mat.get re i j; im = Mat.get im i j })
  in
  let solve_complex (v : Cmat.t) =
    let re = cols_to_cmat (Dss.solve_factored f (Cmat.re v)) in
    let im = cols_to_cmat (Dss.solve_factored f (Cmat.im v)) in
    Cmat.add re (Cmat.scale_elt { Complex.re = 0.0; im = 1.0 } im)
  in
  let project (v : Cmat.t) =
    Cmat.init p_out v.Cmat.cols (fun i j ->
        let acc = ref Complex.zero in
        for k = 0 to c.Mat.cols - 1 do
          acc := Complex.add !acc (Scalar.Cx.scale (Mat.get c i k) (Cmat.get v k j))
        done;
        !acc)
  in
  let v0 = cols_to_cmat (Dss.solve_factored f b) in
  let rec go v k acc =
    if k >= count then List.rev acc
    else begin
      let next = if k + 1 >= count then v else solve_complex (apply_e_complex v) in
      go next (k + 1) (project v :: acc)
    end
  in
  go v0 0 []

(* Worst relative mismatch of the first [count] moments of two systems. *)
let mismatch sys1 sys2 ~s0 ~count =
  let m1 = at sys1 ~s0 ~count and m2 = at sys2 ~s0 ~count in
  List.fold_left2
    (fun acc a b ->
      let scale = Float.max 1e-300 (Cmat.max_abs a) in
      Float.max acc (Cmat.max_abs (Cmat.sub a b) /. scale))
    0.0 m1 m2
