(* Frequency responses and response-error metrics. *)

open Pmtbr_la

(* H(s) = C (sE - A)^{-1} B : outputs x inputs, complex. *)
let eval sys (s : Complex.t) =
  let z = Dss.shifted_solve sys s in
  let c = Dss.c_matrix sys in
  let p_out = c.Mat.rows and p_in = Array.length z in
  Cmat.init p_out p_in (fun i j ->
      let acc = ref Complex.zero in
      for k = 0 to c.Mat.cols - 1 do
        acc := Complex.add !acc (Scalar.Cx.scale (Mat.get c i k) z.(j).(k))
      done;
      !acc)

let eval_jw sys (omega : float) = eval sys { Complex.re = 0.0; im = omega }

(* Responses over a frequency grid (rad/s). *)
let sweep sys (omegas : float array) = Array.map (eval_jw sys) omegas

(* Entry (i, j) of each response in a sweep. *)
let entry_series responses i j = Array.map (fun h -> Cmat.get h i j) responses

(* Worst-case absolute entrywise error between two sweeps. *)
let max_abs_error (h_ref : Cmat.t array) (h_apx : Cmat.t array) =
  assert (Array.length h_ref = Array.length h_apx);
  let worst = ref 0.0 in
  Array.iteri
    (fun k href ->
      let d = Cmat.sub href h_apx.(k) in
      worst := Float.max !worst (Cmat.max_abs d))
    h_ref;
  !worst

(* Worst-case error normalised by the largest reference magnitude. *)
let max_rel_error h_ref h_apx =
  let scale = Array.fold_left (fun acc h -> Float.max acc (Cmat.max_abs h)) 0.0 h_ref in
  if scale = 0.0 then max_abs_error h_ref h_apx else max_abs_error h_ref h_apx /. scale

(* RMS entrywise error over the sweep. *)
let rms_error h_ref h_apx =
  assert (Array.length h_ref = Array.length h_apx);
  let acc = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun k href ->
      let d = Cmat.sub href h_apx.(k) in
      Array.iter
        (fun z ->
          let m = Complex.norm z in
          acc := !acc +. (m *. m);
          incr count)
        d.Cmat.data)
    h_ref;
  if !count = 0 then 0.0 else sqrt (!acc /. float_of_int !count)

(* Error restricted to the real part of entry (i, j): the spiral-inductor
   resistance metric of Fig. 7. *)
let max_real_part_error ?(i = 0) ?(j = 0) h_ref h_apx =
  let worst = ref 0.0 in
  Array.iteri
    (fun k href ->
      let r1 = (Cmat.get href i j).Complex.re and r2 = (Cmat.get h_apx.(k) i j).Complex.re in
      worst := Float.max !worst (Float.abs (r1 -. r2)))
    h_ref;
  !worst

let max_real_part_rel_error ?(i = 0) ?(j = 0) h_ref h_apx =
  let scale = ref 0.0 in
  Array.iter (fun h -> scale := Float.max !scale (Float.abs (Cmat.get h i j).Complex.re)) h_ref;
  if !scale = 0.0 then max_real_part_error ~i ~j h_ref h_apx
  else max_real_part_error ~i ~j h_ref h_apx /. !scale
