(* H-infinity norm computation by Hamiltonian-eigenvalue bisection
   (Boyd-Balakrishnan-Kabamba / Bruinsma-Steinbuch).

   For a stable standard-form system (A, B, C) with D = 0, gamma exceeds
   ||H||_inf exactly when the Hamiltonian

     M(gamma) = [ A              B B^T / gamma ]
                [ -C^T C / gamma        -A^T   ]

   has no purely imaginary eigenvalues.  Bisection on gamma then pins the
   norm to any accuracy.  This turns the Glover bound of balanced
   truncation into an exactly checkable statement: build the error system
   H - H_r and compute its true H-infinity norm. *)

open Pmtbr_la

exception Unstable

let hamiltonian ~(a : Mat.t) ~(b : Mat.t) ~(c : Mat.t) ~gamma =
  let n = a.Mat.rows in
  let bbt = Mat.scale (1.0 /. gamma) (Mat.mul b (Mat.transpose b)) in
  let ctc = Mat.scale (-1.0 /. gamma) (Mat.mul (Mat.transpose c) c) in
  Mat.init (2 * n) (2 * n) (fun i j ->
      match (i < n, j < n) with
      | true, true -> Mat.get a i j
      | true, false -> Mat.get bbt i (j - n)
      | false, true -> Mat.get ctc (i - n) j
      | false, false -> -.Mat.get a (j - n) (i - n))

(* Does M(gamma) have an eigenvalue on the imaginary axis? *)
let has_imaginary_eigenvalue ~a ~b ~c ~gamma =
  let m = hamiltonian ~a ~b ~c ~gamma in
  let evs = Cschur.eigenvalues (Cschur.of_real m) in
  let scale =
    Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 1e-300 evs
  in
  Array.exists (fun z -> Float.abs z.Complex.re <= 1e-9 *. scale) evs

(* Largest singular value of the response at one frequency. *)
let peak_gain ~a ~b ~c omega =
  let n = a.Mat.rows in
  let m =
    Cmat.axpby_real
      ~alpha:{ Complex.re = 0.0; im = omega }
      (Mat.identity n)
      ~beta:{ Complex.re = -1.0; im = 0.0 }
      a
  in
  let x = Cmat.lu_solve (Cmat.lu m) (Cmat.of_mat b) in
  let h = Cmat.mul (Cmat.of_mat c) x in
  (* sigma_max of the complex p x m matrix via its real embedding *)
  let re = Cmat.re h and im = Cmat.im h in
  let big = Mat.vcat (Mat.hcat re (Mat.scale (-1.0) im)) (Mat.hcat im re) in
  (Svd.values big).(0)

(* [norm ~a ~b ~c ()] is the H-infinity norm of the stable standard-form
   system, to relative accuracy [rtol]. *)
let norm ?(rtol = 1e-4) ~(a : Mat.t) ~(b : Mat.t) ~(c : Mat.t) () =
  (* stability check: bisection diverges on unstable systems *)
  let evs = Cschur.eigenvalues (Cschur.of_real a) in
  let scale = Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 1e-300 evs in
  if Array.exists (fun z -> z.Complex.re > 1e-9 *. scale) evs then raise Unstable;
  (* lower bound from a coarse frequency grid, anchored at the pole
     frequencies (peaks sit near resonances) *)
  let omegas =
    Array.to_list (Array.map (fun z -> Complex.norm z) evs)
    @ [ 0.0 ]
    |> List.filter (fun w -> w >= 0.0)
  in
  let lower =
    List.fold_left (fun acc w -> Float.max acc (peak_gain ~a ~b ~c w)) 1e-300 omegas
  in
  (* grow an upper bound until the Hamiltonian has no imaginary eigs *)
  let upper = ref (2.0 *. lower) in
  let guard = ref 0 in
  while has_imaginary_eigenvalue ~a ~b ~c ~gamma:!upper && !guard < 60 do
    upper := !upper *. 2.0;
    incr guard
  done;
  let lo = ref lower and hi = ref !upper in
  while (!hi -. !lo) /. !hi > rtol do
    let mid = sqrt (!lo *. !hi) in
    if has_imaginary_eigenvalue ~a ~b ~c ~gamma:mid then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

(* Standard-form error system H1 - H2: block-diagonal A, stacked B,
   [C1, -C2]. *)
let error_system sys1 sys2 =
  let a1, b1, c1 = Dss.to_standard sys1 in
  let a2, b2, c2 = Dss.to_standard sys2 in
  assert (b1.Mat.cols = b2.Mat.cols && c1.Mat.rows = c2.Mat.rows);
  let n1 = a1.Mat.rows and n2 = a2.Mat.rows in
  let a =
    Mat.init (n1 + n2) (n1 + n2) (fun i j ->
        if i < n1 && j < n1 then Mat.get a1 i j
        else if i >= n1 && j >= n1 then Mat.get a2 (i - n1) (j - n1)
        else 0.0)
  in
  let b = Mat.vcat b1 b2 in
  let c = Mat.hcat c1 (Mat.scale (-1.0) c2) in
  (a, b, c)

(* True H-infinity norm of the difference of two systems. *)
let error_norm ?rtol sys1 sys2 =
  let a, b, c = error_system sys1 sys2 in
  norm ?rtol ~a ~b ~c ()
