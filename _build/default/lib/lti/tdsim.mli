(** Transient simulation of descriptor systems by the trapezoidal rule.
    The left-hand matrix [(E - h/2 A)] is factored once (sparse LU for full
    models, dense LU for reduced ones), so each step costs one matvec plus
    one solve — the usage pattern of a circuit simulator's linear transient
    analysis. *)

open Pmtbr_la

type result = {
  times : float array;
  outputs : Mat.t;  (** outputs x steps *)
  states : Mat.t option;  (** states x steps, when requested *)
}

type stepper = {
  n : int;
  advance : float array -> float array -> float array -> float array;
      (** [advance x u_k u_k1] is [x_{k+1}] *)
}

val make_stepper : Dss.t -> dt:float -> stepper
(** Factor the stepping matrices for a fixed step size. *)

val simulate : ?keep_states:bool -> ?x0:float array -> Dss.t -> t0:float -> t1:float ->
  dt:float -> u:(float -> float array) -> result
(** Simulate from [x0] (default: rest).  [u t] gives the input vector at
    time [t]; it is evaluated at both endpoints of each step. *)

val output_error : ?row:int -> result -> result -> float
(** Worst absolute difference of one output row between two results on the
    same grid (default row 0). *)

val output_rms_error : ?row:int -> result -> result -> float
(** Root-mean-square difference of one output row. *)
