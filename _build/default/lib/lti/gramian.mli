(** Gramians of standard-form systems ([E = I]), with optional input
    correlation: paper Section IV-C replaces [B B^T] by [B K B^T]. *)

open Pmtbr_la

val controllability : ?k:Mat.t -> a:Mat.t -> b:Mat.t -> unit -> Mat.t
(** Solve [A X + X A^T + B K B^T = 0] ([K] defaults to the identity). *)

val observability : a:Mat.t -> c:Mat.t -> unit -> Mat.t
(** Solve [A^T Y + Y A + C^T C = 0]. *)

val cross : a:Mat.t -> b:Mat.t -> c:Mat.t -> unit -> Mat.t
(** Cross Gramian: solve [A X + X A + B C = 0] (square systems). *)

val controllability_family : a:Mat.t -> Mat.t list -> Mat.t list
(** Controllability Gramians for several input matrices with a single
    factorisation of [A] (the paper's Fig. 3 sweep). *)
