(* Pole-residue (modal) form of a dense reduced model:

     H(s) = sum_i R_i / (s - p_i)        (+ direct term, zero here)

   computed from the eigendecomposition of the reduced pencil.  Pole-residue
   models are what downstream behavioural simulators and IBIS-AMI-style
   flows consume, so this is the natural export format for a reduced
   parasitic model.  Residues come from the right and left eigenvectors:
   R_i = (C v_i) (w_i^H B) / (w_i^H E v_i). *)

open Pmtbr_la

type mode = {
  pole : Complex.t;
  residue : Cmat.t; (* outputs x inputs *)
}

type t = { modes : mode list; order : int }

(* Modal decomposition of a dense reduced model (invertible E): convert to
   standard form A' = E^{-1}A, B' = E^{-1}B, then

     H(s) = sum_i (C v_i) (w_i^H B') / (w_i^H v_i) / (s - lambda_i)

   with v_i, w_i the right/left eigenvectors of A'.  Poles with positive
   real part are kept, so instability is visible to the caller. *)
let decompose sys =
  let a', b', c = Dss.to_standard sys in
  let n = a'.Mat.rows in
  let schur = Cschur.of_real a' in
  let evs = Cschur.eigenvalues schur in
  let bc = Cmat.of_mat b' and cc = Cmat.of_mat c in
  (* left eigenvectors: eigenvectors of A'^H at the conjugate eigenvalue *)
  let schur_t = Cschur.decompose (Cmat.conj_transpose (Cmat.of_mat a')) in
  let evs_t = Cschur.eigenvalues schur_t in
  let left_for lambda =
    let target = Complex.conj lambda in
    let best = ref 0 and bestd = ref Float.infinity in
    Array.iteri
      (fun i mu ->
        let d = Complex.norm (Complex.sub mu target) in
        if d < !bestd then begin
          bestd := d;
          best := i
        end)
      evs_t;
    Cschur.eigenvector schur_t !best
  in
  let modes =
    List.init n (fun i ->
        let pole = evs.(i) in
        let v = Cschur.eigenvector schur i in
        let w = left_for pole in
        let scale = Cvec.dot w v in
        let cvec = Cmat.mv cc v in
        let p_out = Array.length cvec and p_in = bc.Cmat.cols in
        let residue =
          Cmat.init p_out p_in (fun r q ->
              let wb = Cvec.dot w (Cmat.col bc q) in
              Complex.div (Complex.mul cvec.(r) wb) scale)
        in
        { pole; residue })
  in
  { modes; order = n }

(* Evaluate the pole-residue model at a complex frequency. *)
let eval { modes; _ } (s : Complex.t) =
  match modes with
  | [] -> invalid_arg "Modal.eval: empty model"
  | first :: _ ->
      let p_out = first.residue.Cmat.rows and p_in = first.residue.Cmat.cols in
      let acc = Cmat.create p_out p_in in
      List.fold_left
        (fun acc { pole; residue } ->
          let gain = Complex.div Complex.one (Complex.sub s pole) in
          Cmat.add acc (Cmat.scale_elt gain residue))
        acc modes

(* Dominant modes by residue magnitude over damping: |R| / |Re p| is the
   peak contribution of the mode to the frequency response. *)
let dominant ?(count = 5) t =
  let score { pole; residue } =
    Cmat.max_abs residue /. Float.max 1e-300 (Float.abs pole.Complex.re)
  in
  let sorted = List.sort (fun m1 m2 -> compare (score m2) (score m1)) t.modes in
  List.filteri (fun i _ -> i < count) sorted
