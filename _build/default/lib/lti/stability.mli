(** Stability and passivity analysis of (reduced) models — the checks
    behind paper Section V-E.  Congruence-projected RLC models are passive
    by construction; these routines verify that numerically and diagnose
    models produced by non-structure-preserving methods. *)

val poles : Dss.t -> Complex.t array
(** Finite generalised eigenvalues of the pencil (E, A) — the poles.
    Requires invertible E; intended for dense reduced models. *)

val spectral_abscissa : Dss.t -> float
(** Largest real part over the poles; negative means asymptotically
    stable. *)

val is_stable : ?tol:float -> Dss.t -> bool
(** [spectral_abscissa sys <= tol] (default 0). *)

val hermitian_part_min_eig : Pmtbr_la.Cmat.t -> float
(** Smallest eigenvalue of [(H + H^H)/2], computed through the real
    symmetric embedding. *)

type passivity_report = {
  worst : float;  (** most negative min-eigenvalue of the Hermitian part *)
  worst_omega : float;  (** frequency (rad/s) where it occurs *)
  passive : bool;
}

val check_passivity : ?tol:float -> Dss.t -> omegas:float array -> passivity_report
(** Sampled positive-realness check of an impedance-type model: the
    Hermitian part of [H(jw)] must be positive semidefinite at every tested
    frequency ([tol], default [-1e-9], absorbs round-off). *)

val rc_structure_certificate : Dss.t -> bool option
(** For symmetric (RC-structured) dense models: [Some true] when
    [E] is symmetric positive definite and [A] symmetric negative
    semidefinite — certifying stability and passivity without any
    frequency sampling; [Some false] when symmetric but indefinite; [None]
    when the model is not symmetric. *)
