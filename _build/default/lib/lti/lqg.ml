(* LQG (closed-loop) balanced truncation (Jonckheere-Silverman): balance
   the stabilising solutions of the control and filter Riccati equations

     A P + P A^T - P C^T C P + B B^T = 0
     A^T Q + Q A - Q B B^T Q + C^T C = 0

   instead of the open-loop Gramians.  The resulting "LQG characteristic
   values" play the role of Hankel singular values for closed-loop
   relevance; truncation keeps the states that matter when the model is
   used inside a feedback loop.  Implemented with the same square-root
   machinery as [Tbr], on top of [Riccati.care].

   This is the flavour of Riccati-balanced reduction the paper points to as
   future work (positive-real TBR, ref. [12], uses the same structure with
   the positive-real Riccati equations). *)

open Pmtbr_la

type t = {
  rom : Dss.t;
  char_values : float array; (* LQG characteristic values, descending *)
  order : int;
}

let characteristic_values ~(a : Mat.t) ~(b : Mat.t) ~(c : Mat.t) () =
  let p =
    Riccati.care ~a:(Mat.transpose a) ~g:(Mat.mul (Mat.transpose c) c)
      ~q:(Mat.mul b (Mat.transpose b)) ()
  in
  let q =
    Riccati.care ~a ~g:(Mat.mul b (Mat.transpose b)) ~q:(Mat.mul (Mat.transpose c) c) ()
  in
  let l = Eig_sym.psd_factor p in
  let m = Eig_sym.psd_factor q in
  Svd.values (Mat.mul (Mat.transpose m) l)

let reduce ?order ?(tol = 1e-10) ~(a : Mat.t) ~(b : Mat.t) ~(c : Mat.t) () =
  let p =
    Riccati.care ~a:(Mat.transpose a) ~g:(Mat.mul (Mat.transpose c) c)
      ~q:(Mat.mul b (Mat.transpose b)) ()
  in
  let q =
    Riccati.care ~a ~g:(Mat.mul b (Mat.transpose b)) ~q:(Mat.mul (Mat.transpose c) c) ()
  in
  let l = Eig_sym.psd_factor p in
  let m = Eig_sym.psd_factor q in
  let { Svd.u; sigma; v } = Svd.decompose (Mat.mul (Mat.transpose m) l) in
  let smax = if Array.length sigma = 0 then 0.0 else Float.max sigma.(0) 1e-300 in
  let max_rank =
    let r = ref 0 in
    Array.iter (fun s -> if s > 1e-13 *. smax then incr r) sigma;
    max 1 !r
  in
  let q_model =
    match order with
    | Some q -> max 1 (min q max_rank)
    | None ->
        let r = ref 0 in
        Array.iter (fun s -> if s > tol *. smax then incr r) sigma;
        max 1 (min !r max_rank)
  in
  let inv_sqrt = Array.init q_model (fun i -> 1.0 /. sqrt sigma.(i)) in
  let scale_cols mat =
    Mat.init mat.Mat.rows q_model (fun i j -> Mat.get mat i j *. inv_sqrt.(j))
  in
  let t_r = scale_cols (Mat.mul l (Mat.sub_cols v 0 q_model)) in
  let t_l = scale_cols (Mat.mul m (Mat.sub_cols u 0 q_model)) in
  let a_r = Mat.mul (Mat.transpose t_l) (Mat.mul a t_r) in
  let b_r = Mat.mul (Mat.transpose t_l) b in
  let c_r = Mat.mul c t_r in
  { rom = Dss.of_standard ~a:a_r ~b:b_r ~c:c_r; char_values = sigma; order = q_model }

let reduce_dss ?order ?tol sys =
  let a, b, c = Dss.to_standard sys in
  reduce ?order ?tol ~a ~b ~c ()
