lib/lti/gramian.mli: Mat Pmtbr_la
