lib/lti/stability.ml: Array Cmat Complex Cschur Dss Eig_sym Float Freq Mat Pmtbr_la
