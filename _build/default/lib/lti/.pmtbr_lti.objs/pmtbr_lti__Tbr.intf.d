lib/lti/tbr.mli: Dss Mat Pmtbr_la
