lib/lti/hinf.ml: Array Cmat Complex Cschur Dss Float List Mat Pmtbr_la Svd
