lib/lti/freq.mli: Cmat Complex Dss Pmtbr_la
