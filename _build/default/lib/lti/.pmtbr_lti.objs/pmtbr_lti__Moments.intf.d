lib/lti/moments.mli: Complex Dss Pmtbr_la
