lib/lti/tbr.ml: Array Dss Eig_sym Gramian List Lyap Mat Pmtbr_la Svd
