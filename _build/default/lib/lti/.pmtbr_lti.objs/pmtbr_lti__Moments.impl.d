lib/lti/moments.ml: Array Cmat Complex Dss Float List Mat Pmtbr_la Scalar
