lib/lti/tdsim.mli: Dss Mat Pmtbr_la
