lib/lti/gramian.ml: List Lyap Mat Pmtbr_la
