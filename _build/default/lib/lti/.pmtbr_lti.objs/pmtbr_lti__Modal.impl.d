lib/lti/modal.ml: Array Cmat Complex Cschur Cvec Dss Float List Mat Pmtbr_la
