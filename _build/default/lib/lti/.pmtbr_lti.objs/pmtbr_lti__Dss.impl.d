lib/lti/dss.ml: Array Cmat Complex List Mat Pmtbr_circuit Pmtbr_la Pmtbr_sparse Shifted Triplet
