lib/lti/tdsim.ml: Array Csc Dss Float Mat Ordering Pmtbr_la Pmtbr_sparse Sparse_lu Triplet
