lib/lti/freq.ml: Array Cmat Complex Dss Float Mat Pmtbr_la Scalar
