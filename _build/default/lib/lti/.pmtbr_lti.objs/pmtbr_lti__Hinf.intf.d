lib/lti/hinf.mli: Dss Pmtbr_la
