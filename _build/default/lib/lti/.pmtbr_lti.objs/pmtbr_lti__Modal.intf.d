lib/lti/modal.mli: Complex Dss Pmtbr_la
