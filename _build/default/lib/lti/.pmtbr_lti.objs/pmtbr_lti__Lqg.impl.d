lib/lti/lqg.ml: Array Dss Eig_sym Float Mat Pmtbr_la Riccati Svd
