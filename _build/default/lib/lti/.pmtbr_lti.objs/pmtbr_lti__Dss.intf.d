lib/lti/dss.mli: Complex Mat Pmtbr_circuit Pmtbr_la Pmtbr_sparse Shifted Triplet
