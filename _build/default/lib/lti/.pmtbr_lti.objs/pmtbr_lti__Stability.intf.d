lib/lti/stability.mli: Complex Dss Pmtbr_la
