lib/lti/lqg.mli: Dss Mat Pmtbr_la
