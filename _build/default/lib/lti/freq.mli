(** Frequency responses and response-error metrics. *)

open Pmtbr_la

val eval : Dss.t -> Complex.t -> Cmat.t
(** [eval sys s] is the transfer matrix [H(s) = C (sE - A)^{-1} B]
    (outputs x inputs). *)

val eval_jw : Dss.t -> float -> Cmat.t
(** [eval_jw sys omega] is [eval sys (j omega)]. *)

val sweep : Dss.t -> float array -> Cmat.t array
(** Responses over a grid of frequencies (rad/s). *)

val entry_series : Cmat.t array -> int -> int -> Complex.t array
(** Entry (i, j) of each response in a sweep. *)

val max_abs_error : Cmat.t array -> Cmat.t array -> float
(** Worst-case absolute entrywise difference between two sweeps on the same
    grid. *)

val max_rel_error : Cmat.t array -> Cmat.t array -> float
(** {!max_abs_error} normalised by the largest reference magnitude. *)

val rms_error : Cmat.t array -> Cmat.t array -> float
(** Root-mean-square entrywise error over the sweep. *)

val max_real_part_error : ?i:int -> ?j:int -> Cmat.t array -> Cmat.t array -> float
(** Error restricted to the real part of entry (i, j) — the
    spiral-inductor resistance metric of paper Fig. 7. *)

val max_real_part_rel_error : ?i:int -> ?j:int -> Cmat.t array -> Cmat.t array -> float
(** {!max_real_part_error} normalised by the largest reference real
    part. *)
