(* Stability and passivity analysis of (reduced) models - the checks behind
   paper Section V-E.  Congruence-projected RLC models are passive by
   construction; these routines verify that numerically and diagnose models
   produced by non-structure-preserving methods. *)

open Pmtbr_la

(* Finite generalised eigenvalues of the pencil (E, A), i.e. the poles of
   the descriptor system: eigenvalues of E^{-1} A for invertible E.  Only
   meaningful for dense (reduced) models. *)
let poles sys =
  let e = Dss.e_dense sys and a = Dss.a_dense sys in
  let a' = Mat.lu_solve (Mat.lu e) a in
  Cschur.eigenvalues (Cschur.of_real a')

(* Largest real part over the poles; negative means asymptotically
   stable. *)
let spectral_abscissa sys =
  Array.fold_left (fun acc z -> Float.max acc z.Complex.re) Float.neg_infinity (poles sys)

let is_stable ?(tol = 0.0) sys = spectral_abscissa sys <= tol

(* Passivity of an impedance-type model: H(s) must be positive-real, i.e.
   H(jw) + H(jw)^H positive semidefinite for all w.  We check the smallest
   eigenvalue of the Hermitian part on a frequency grid; [worst] is the
   most negative value found (>= 0 means no violation detected). *)
let hermitian_part_min_eig (h : Cmat.t) =
  let p = h.Cmat.rows in
  (* Hermitian part G = (H + H^H)/2; its eigenvalues are real.  Embed the
     Hermitian complex matrix into a real symmetric one of twice the size:
     [[Re G, -Im G], [Im G, Re G]] has the same eigenvalues (doubled). *)
  let g = Cmat.scale 0.5 (Cmat.add h (Cmat.conj_transpose h)) in
  let re = Cmat.re g and im = Cmat.im g in
  let big =
    Mat.init (2 * p) (2 * p) (fun i j ->
        let bi = i / p and bj = j / p in
        let ii = i mod p and jj = j mod p in
        match (bi, bj) with
        | 0, 0 | 1, 1 -> Mat.get re ii jj
        | 0, 1 -> -.Mat.get im ii jj
        | 1, 0 -> Mat.get im ii jj
        | _ -> assert false)
  in
  let eigs = Eig_sym.eigenvalues big in
  eigs.(Array.length eigs - 1)

type passivity_report = {
  worst : float; (* most negative min-eigenvalue of the Hermitian part *)
  worst_omega : float; (* frequency where it occurs *)
  passive : bool;
}

let check_passivity ?(tol = -1e-9) sys ~omegas =
  let worst = ref Float.infinity and worst_omega = ref 0.0 in
  Array.iter
    (fun w ->
      let h = Freq.eval_jw sys w in
      let m = hermitian_part_min_eig h in
      if m < !worst then begin
        worst := m;
        worst_omega := w
      end)
    omegas;
  { worst = !worst; worst_omega = !worst_omega; passive = !worst >= tol }

(* Symmetric-definite structural check for congruence-reduced RC models:
   V^T E V must be SPD and V^T A V negative semidefinite; that certifies
   stability and passivity without frequency sampling. *)
let rc_structure_certificate sys =
  let e = Dss.e_dense sys and a = Dss.a_dense sys in
  if not (Mat.is_symmetric ~tol:1e-9 e && Mat.is_symmetric ~tol:1e-9 a) then None
  else begin
    let e_eigs = Eig_sym.eigenvalues e in
    let a_eigs = Eig_sym.eigenvalues a in
    let n = Array.length e_eigs in
    let e_pd = n > 0 && e_eigs.(n - 1) > 0.0 in
    let a_nsd = n > 0 && a_eigs.(0) <= 1e-9 *. Float.max 1.0 (Float.abs a_eigs.(n - 1)) in
    Some (e_pd && a_nsd)
  end
