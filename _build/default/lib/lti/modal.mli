(** Pole-residue (modal) form of a dense reduced model,
    [H(s) = sum_i R_i / (s - p_i)] — the natural export format for reduced
    parasitic models consumed by behavioural simulators. *)

type mode = {
  pole : Complex.t;
  residue : Pmtbr_la.Cmat.t;  (** outputs x inputs *)
}

type t = { modes : mode list; order : int }

val decompose : Dss.t -> t
(** Modal decomposition of a dense reduced model (invertible E).  Unstable
    poles, if any, are kept so the caller can see them. *)

val eval : t -> Complex.t -> Pmtbr_la.Cmat.t
(** Evaluate the pole-residue sum at a complex frequency. *)

val dominant : ?count:int -> t -> mode list
(** The [count] modes with the largest peak contribution
    [|R| / |Re pole|], most dominant first. *)
