#!/bin/sh
# CI entry point: build everything, run every suite, and re-check the
# shift-engine determinism contract with backtraces on.  The dev profile
# already treats warnings as errors, so a clean build is part of the gate.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
OCAMLRUNPARAM=b dune runtest

echo "== shift-engine determinism"
OCAMLRUNPARAM=b dune exec test/test_shift_engine.exe -- test determinism

echo "== adaptive-sampling smoke bench"
OCAMLRUNPARAM=b dune exec bench/adaptive_bench.exe -- --smoke

echo "== variant-pipeline smoke bench (cross-Gramian pencil + variant determinism)"
OCAMLRUNPARAM=b dune exec bench/variants_bench.exe -- --smoke

echo "== dense-kernel smoke bench (GEMM/QR bitwise worker-invariance + Jacobi sigma drift)"
OCAMLRUNPARAM=b dune exec bench/dense_bench.exe -- --smoke

echo "== sweep-engine smoke bench (worker-invariance + replay/Hessenberg agreement)"
OCAMLRUNPARAM=b dune exec bench/sweep_bench.exe -- --smoke

echo "== low-rank Lyapunov smoke bench (LR-ADI vs dense agreement + handle reuse)"
OCAMLRUNPARAM=b dune exec bench/lyap_bench.exe -- --smoke

echo "CI OK"
