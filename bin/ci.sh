#!/bin/sh
# CI entry point: build everything, run every suite, and re-check the
# shift-engine determinism contract with backtraces on.  The dev profile
# already treats warnings as errors, so a clean build is part of the gate.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
OCAMLRUNPARAM=b dune runtest

echo "== shift-engine determinism"
OCAMLRUNPARAM=b dune exec test/test_shift_engine.exe -- test determinism

echo "== adaptive-sampling smoke bench"
OCAMLRUNPARAM=b dune exec bench/adaptive_bench.exe -- --smoke

echo "== variant-pipeline smoke bench (cross-Gramian pencil + variant determinism)"
OCAMLRUNPARAM=b dune exec bench/variants_bench.exe -- --smoke

echo "== dense-kernel smoke bench (GEMM/QR bitwise worker-invariance + Jacobi sigma drift)"
OCAMLRUNPARAM=b dune exec bench/dense_bench.exe -- --smoke

echo "== sweep-engine smoke bench (worker-invariance + replay/Hessenberg agreement)"
OCAMLRUNPARAM=b dune exec bench/sweep_bench.exe -- --smoke

echo "== low-rank Lyapunov smoke bench (LR-ADI vs dense agreement + handle reuse)"
OCAMLRUNPARAM=b dune exec bench/lyap_bench.exe -- --smoke

echo "== reduction-service smoke bench (warm/cold gate + tier counters + bitwise identity)"
OCAMLRUNPARAM=b dune exec bench/serve_bench.exe -- --smoke

echo "== realizable-ROM smoke bench (parse throughput + passive col-solve ratio + roundtrip)"
OCAMLRUNPARAM=b dune exec bench/export_bench.exe -- --smoke

echo "== hierarchical-reduction smoke bench (flat-vs-hier agreement + worker invariance)"
OCAMLRUNPARAM=b dune exec bench/hier_bench.exe -- --smoke

echo "== real-multicore lane (shift/sweep/hier smoke at 4 workers)"
# each bench asserts its pool really expanded past one domain, or prints
# a documented SKIP on single-core hosts (the correctness gates above
# run either way)
OCAMLRUNPARAM=b dune exec bench/shift_bench.exe -- --smoke --workers 4 --assert-multicore
OCAMLRUNPARAM=b dune exec bench/sweep_bench.exe -- --smoke --workers 4 --assert-multicore
OCAMLRUNPARAM=b dune exec bench/hier_bench.exe -- --smoke --workers 4 --assert-multicore
# the nested-dissection CLI path end to end: budget-driven recursive
# partitioning plus interface compression, fanned over 4 workers (pool
# collapses to 1 on a single-core host; the result is bitwise-identical
# either way, which is what the suites assert)
OCAMLRUNPARAM=b dune exec bin/pmtbr_cli.exe -- reduce --circuit rc-mesh --size 6 \
    --method hier --partition auto --max-part-states 20 --interface-tol 1e-8 \
    --samples 8 --tol 1e-10 --workers 4 --stats

echo "== CLI export roundtrip (tbr-passive reduce --export, file re-parsed and swept)"
EXPORT_NL=".ci_export_$$.sp"
rm -f "$EXPORT_NL"
dune exec bin/pmtbr_cli.exe -- reduce --circuit rc-mesh --size 6 --method tbr-passive \
    --order 8 --export "$EXPORT_NL"
[ -s "$EXPORT_NL" ] || { echo "export file missing or empty" >&2; exit 1; }
# the exported netlist is a valid circuit source in its own right
dune exec bin/pmtbr_cli.exe -- info --spice "$EXPORT_NL"
rm -f "$EXPORT_NL"

echo "== reduction-service daemon round trip (pmtbr serve / pmtbr batch)"
SOCK=".ci_serve_$$.sock"
SERVE_PID=""
# a killed CI run must not leave a daemon or a stale socket behind
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -f "$SOCK"
}
trap cleanup EXIT INT TERM
dune exec bin/pmtbr_cli.exe -- serve --socket "$SOCK" --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon socket never appeared" >&2; exit 1; }
dune exec bin/pmtbr_cli.exe -- batch --socket "$SOCK" --ping
# cold + warm repeats of one job: digests must agree, warm must be faster
dune exec bin/pmtbr_cli.exe -- batch --socket "$SOCK" --circuit rc-mesh --size 6 \
    --band 0:2e10 --order 8 --samples 10 --repeat 3 --assert-warm-speedup 2
# incremental: new band on the same network reuses the prepared handle
dune exec bin/pmtbr_cli.exe -- batch --socket "$SOCK" --circuit rc-mesh --size 6 \
    --band 1e8:1e10 --order 8 --samples 10
# hierarchical job: partitioned sampling tiers, repeated so the second
# run lands on warm per-subdomain sample caches
dune exec bin/pmtbr_cli.exe -- batch --socket "$SOCK" --circuit rc-mesh --size 8 \
    --method hier --partition 2 --band 0:2e10 --order 8 --samples 8 --repeat 2
# the new dissection job fields over the wire: partition auto +
# max-part-states + interface-tol, repeated so the re-run re-finds every
# leaf's sample tier warm
dune exec bin/pmtbr_cli.exe -- batch --socket "$SOCK" --circuit rc-mesh --size 8 \
    --method hier --partition auto --max-part-states 20 --interface-tol 1e-8 \
    --band 0:2e10 --order 8 --samples 8 --repeat 2
# a tbr-passive export job: the response body carries the synthesized
# netlist, which must re-parse as a circuit source
DAEMON_NL=".ci_daemon_export_$$.sp"
rm -f "$DAEMON_NL"
dune exec bin/pmtbr_cli.exe -- batch --socket "$SOCK" --circuit rc-mesh --size 6 \
    --method tbr-passive --band 0:2e10 --order 8 --export "$DAEMON_NL"
[ -s "$DAEMON_NL" ] || { echo "daemon export body missing or empty" >&2; exit 1; }
dune exec bin/pmtbr_cli.exe -- info --spice "$DAEMON_NL"
rm -f "$DAEMON_NL"
dune exec bin/pmtbr_cli.exe -- batch --socket "$SOCK" --server-stats
dune exec bin/pmtbr_cli.exe -- batch --socket "$SOCK" --shutdown
wait "$SERVE_PID"
SERVE_PID=""
if [ -S "$SOCK" ]; then echo "daemon left its socket behind" >&2; exit 1; fi

echo "CI OK"
