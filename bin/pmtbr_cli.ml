(* Command-line driver: generate the bundled circuit models, reduce them
   with any of the implemented algorithms, and inspect the results.

     pmtbr info    --circuit spiral
     pmtbr hsv     --circuit clock-tree --samples 50
     pmtbr reduce  --circuit connector --method fs-pmtbr --order 18 --band 0:5e10
     pmtbr sweep   --circuit peec --points 40 *)

open Cmdliner
open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

(* ------------------------------------------------------------------ *)
(* Circuit selection                                                   *)
(* ------------------------------------------------------------------ *)

type circuit =
  | Rc_line
  | Rc_mesh
  | Clock_tree
  | Spiral
  | Peec
  | Connector
  | Substrate
  | Coupled_bus
  | Tline

let circuit_names =
  [
    ("rc-line", Rc_line);
    ("rc-mesh", Rc_mesh);
    ("clock-tree", Clock_tree);
    ("spiral", Spiral);
    ("peec", Peec);
    ("connector", Connector);
    ("substrate", Substrate);
    ("coupled-bus", Coupled_bus);
    ("tline", Tline);
  ]

let build_netlist circuit ~size ~ports ~seed =
  match circuit with
  | Rc_line -> Pmtbr_circuit.Rc_line.generate ~sections:(Option.value size ~default:50) ()
  | Rc_mesh ->
      let n = Option.value size ~default:12 in
      Pmtbr_circuit.Rc_mesh.generate ~rows:n ~cols:n ~ports:(Option.value ports ~default:4) ()
  | Clock_tree -> Pmtbr_circuit.Clock_tree.generate ~levels:(Option.value size ~default:7) ()
  | Spiral -> Pmtbr_circuit.Spiral.generate ~segments:(Option.value size ~default:16) ()
  | Peec -> Pmtbr_circuit.Peec.generate ~cells:(Option.value size ~default:10) ()
  | Connector -> Pmtbr_circuit.Connector.generate ~pins:(Option.value size ~default:18) ()
  | Substrate ->
      Pmtbr_circuit.Substrate.generate ~ports:(Option.value ports ~default:150) ~seed ()
  | Coupled_bus ->
      Pmtbr_circuit.Coupled_bus.generate ~lines:(Option.value ports ~default:4)
        ~sections:(Option.value size ~default:20) ()
  | Tline -> Pmtbr_circuit.Tline.generate ~cells:(Option.value size ~default:30) ()

(* Default sampling bandwidth per circuit (rad/s). *)
let default_band = function
  | Rc_line -> 3e9
  | Rc_mesh -> 2e10
  | Clock_tree -> Pmtbr_circuit.Clock_tree.bandwidth ()
  | Spiral -> Pmtbr_circuit.Spiral.sample_band ()
  | Peec -> Pmtbr_circuit.Peec.sample_band () /. 2.0
  | Connector -> Pmtbr_circuit.Connector.band_of_interest
  | Substrate -> 100.0 *. Pmtbr_circuit.Substrate.corner_frequency ()
  | Coupled_bus -> Pmtbr_circuit.Coupled_bus.bandwidth ()
  | Tline -> Pmtbr_circuit.Tline.valid_band () /. 2.0

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let circuit_arg =
  let doc =
    Printf.sprintf "Circuit model to build (%s)."
      (String.concat ", " (List.map fst circuit_names))
  in
  Arg.(
    value
    & opt (some (enum circuit_names)) None
    & info [ "c"; "circuit" ] ~docv:"CIRCUIT" ~doc)

let spice_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "spice" ] ~docv:"FILE" ~doc:"Read the circuit from a SPICE-dialect netlist file.")

(* Resolve the circuit source: a generated model or a SPICE file. *)
let resolve ~circuit ~spice ~size ~ports ~seed =
  match (circuit, spice) with
  | Some c, None -> (build_netlist c ~size ~ports ~seed, Some c)
  | None, Some path -> (Pmtbr_circuit.Spice.netlist (Pmtbr_circuit.Spice.parse_file path), None)
  | Some _, Some _ -> failwith "give either --circuit or --spice, not both"
  | None, None -> failwith "one of --circuit or --spice is required"

let band_of ~circuit ~band ~fallback =
  match (band, circuit) with
  | Some (_, hi), _ -> hi
  | None, Some c -> default_band c
  | None, None -> fallback

let size_arg =
  Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N" ~doc:"Circuit size parameter.")

let ports_arg =
  Arg.(value & opt (some int) None & info [ "ports" ] ~docv:"P" ~doc:"Number of ports.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let samples_arg =
  Arg.(value & opt int 30 & info [ "samples" ] ~docv:"K" ~doc:"Number of frequency samples.")

let workers_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "workers" ]
        ~docv:"W"
        ~doc:
          "Worker domains for both stages of a run: the parallel multi-shift sampling engine \
           and the dense reduction kernels (SVD/QR/GEMM in Pmtbr_la.Par_kernel).  0 = one per \
           recommended core.  Any value produces bitwise-identical results.")

(* 0 = auto (engine default); the engine treats values < 1 the same way.
   Also installs the same pool size as the dense-kernel default, so one
   flag covers the solve stage and the reduction stage. *)
let workers_opt w =
  let w = if w >= 1 then Some w else None in
  Par_kernel.set_default_workers w;
  w

(* The converter validates at the edge (finite, 0 <= lo < hi) through the
   same routine the serve protocol applies to band fields, so a reversed,
   negative, zero-width or NaN band is a usage error with a clear message
   instead of a garbage sampling grid. *)
let band_arg =
  let parse s =
    match Pmtbr_serve.Protocol.parse_band s with
    | Ok band -> Ok band
    | Error msg -> Error (`Msg msg)
  in
  let print ppf (lo, hi) = Format.fprintf ppf "%g:%g" lo hi in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "band" ] ~docv:"LO:HI" ~doc:"Frequency band in rad/s (default: circuit-specific).")

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let run_info circuit spice size ports seed =
  let nl, source = resolve ~circuit ~spice ~size ~ports ~seed in
  let sys = Dss.of_netlist nl in
  let r, c, l, k = Pmtbr_circuit.Netlist.stats nl in
  Printf.printf "states:     %d\n" (Dss.order sys);
  Printf.printf "ports:      %d\n" (Dss.inputs sys);
  Printf.printf "elements:   %d R, %d C, %d L, %d K\n" r c l k;
  match source with
  | Some c ->
      Printf.printf "default sampling band: %.3e rad/s (%.3f GHz)\n" (default_band c)
        (default_band c /. (2.0 *. Float.pi *. 1e9))
  | None -> ()

let info_cmd =
  let doc = "Print statistics of a circuit model (generated or SPICE)." in
  Cmd.v (Cmd.info "info" ~doc)
    Term.(const run_info $ circuit_arg $ spice_arg $ size_arg $ ports_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* hsv                                                                 *)
(* ------------------------------------------------------------------ *)

let run_hsv circuit spice size ports seed samples band workers =
  let nl, source = resolve ~circuit ~spice ~size ~ports ~seed in
  let sys = Dss.of_netlist nl in
  let w_hi = band_of ~circuit:source ~band ~fallback:1e10 in
  let pts =
    match band with
    | Some (lo, hi) when lo > 0.0 -> Sampling.points (Sampling.Bands [ (lo, hi) ]) ~count:samples
    | _ -> Sampling.points (Sampling.Uniform { w_max = w_hi }) ~count:samples
  in
  (* the estimate-vs-exact comparison is meaningful in the symmetrised
     coordinates (paper Section III); fall back to the raw descriptor system
     for non-RC networks, where only the estimate is printed *)
  let sym = try Some (Dss.symmetrize_rc sys) with Dss.Not_rc_like -> None in
  let est = Pmtbr.hankel_estimates ?workers:(workers_opt workers) (Option.value sym ~default:sys) pts in
  let exact =
    Option.map
      (fun ssym ->
        let a, b, c = Dss.to_standard ssym in
        Tbr.hankel_singular_values ~a ~b ~c ())
      sym
  in
  (match exact with
  | Some _ -> print_endline "index\testimate\texact"
  | None -> print_endline "index\testimate\t(exact skipped: not an RC network)");
  Array.iteri
    (fun i e ->
      if i < 30 then
        match exact with
        | Some ex when i < Array.length ex -> Printf.printf "%d\t%.4e\t%.4e\n" i e ex.(i)
        | Some _ | None -> Printf.printf "%d\t%.4e\n" i e)
    est

let hsv_cmd =
  let doc = "Estimate Hankel singular values by frequency sampling." in
  Cmd.v (Cmd.info "hsv" ~doc)
    Term.(
      const run_hsv $ circuit_arg $ spice_arg $ size_arg $ ports_arg $ seed_arg $ samples_arg
      $ band_arg $ workers_arg)

(* ------------------------------------------------------------------ *)
(* reduce                                                              *)
(* ------------------------------------------------------------------ *)

type meth =
  | M_pmtbr
  | M_fs
  | M_prima
  | M_tbr
  | M_tbr_lr
  | M_multipoint
  | M_cross
  | M_correlated
  | M_two_step
  | M_pod
  | M_tbr_passive
  | M_hier

let method_names =
  [
    ("pmtbr", M_pmtbr);
    ("hier", M_hier);
    ("fs-pmtbr", M_fs);
    ("prima", M_prima);
    ("tbr", M_tbr);
    ("tbr-lr", M_tbr_lr);
    ("tbr-passive", M_tbr_passive);
    ("multipoint", M_multipoint);
    ("cross-gramian", M_cross);
    ("correlated", M_correlated);
    ("two-step", M_two_step);
    ("pod", M_pod);
  ]

let method_arg =
  let doc =
    Printf.sprintf "Reduction method (%s)." (String.concat ", " (List.map fst method_names))
  in
  Arg.(value & opt (enum method_names) M_pmtbr & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let order_arg =
  Arg.(value & opt (some int) None & info [ "order" ] ~docv:"Q" ~doc:"Target reduced order.")

(* "auto" or an explicit subdomain count.  K < 2 is rejected right here,
   at parse time, with a Cmdliner usage error; K > the state count is
   checked once the circuit is built (same clean error channel through
   [Term.term_result']). *)
type partition_choice = P_auto | P_k of int

let partition_conv =
  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "auto" -> Ok P_auto
    | t -> (
        match int_of_string_opt t with
        | Some k when k >= 2 -> Ok (P_k k)
        | Some k ->
            Error
              (`Msg
                 (Printf.sprintf
                    "partition count must be >= 2 (got %d); a 1-part hierarchy is the flat \
                     path — use 'auto' to size parts from the state budget"
                    k))
        | None ->
            Error (`Msg (Printf.sprintf "expected a subdomain count >= 2 or 'auto' (got %S)" s)))
  in
  let print ppf = function
    | P_auto -> Format.pp_print_string ppf "auto"
    | P_k k -> Format.pp_print_int ppf k
  in
  Arg.conv (parse, print)

let partition_arg =
  Arg.(
    value
    & opt (some partition_conv) None
    & info [ "partition" ] ~docv:"K|auto"
        ~doc:
          "Subdomain goal for the hierarchical method (default 4 when --method hier): an \
           explicit count >= 2, or $(b,auto) to dissect recursively until every part fits \
           --max-part-states.  Giving --partition with the default method switches it to \
           hier; combining it with any other method is an error.")

let max_part_states_arg =
  Arg.(
    value
    & opt int 20_000
    & info [ "max-part-states" ] ~docv:"N"
        ~doc:
          "Per-part state budget for --partition auto: nested dissection recurses while a \
           part exceeds N states, so N is also the largest sparse factorization any \
           subdomain pays.")

let interface_tol_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "interface-tol" ] ~docv:"TOL"
        ~doc:
          "Compress the interface states of the recombined hierarchical model through a \
           second-pass PMTBR with this singular-value tail tolerance (couplings stay \
           exact; full rank falls back to the exact interface).  Without it every \
           separator state is kept verbatim.")

let tol_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "tol" ] ~docv:"TOL" ~doc:"Singular-value tail tolerance for order control.")

let stats_arg =
  Arg.(
    value
    & flag
    & info [ "stats" ]
        ~doc:
          "Print the sample-cache counters (shift solves, columns held, batches, timings).  \
           Available for the cache-pipeline methods: pmtbr, fs-pmtbr, multipoint, \
           cross-gramian, correlated; tbr-lr prints its Lyapunov-solver counters instead.")

let adaptive_arg =
  Arg.(
    value
    & flag
    & info [ "adaptive" ]
        ~doc:
          "Use the adaptive cache-driven entry point with on-the-fly order control \
           (pmtbr, fs-pmtbr, cross-gramian, correlated).")

let draws_arg =
  Arg.(
    value
    & opt int 40
    & info [ "draws" ] ~docv:"D"
        ~doc:
          "Random input-direction draws for the correlated method (the cap when \
           --adaptive).")

let print_stats ?(note = "each shift solved once") (st : Sample_cache.stats) =
  Printf.printf "shift solves:      %d (%s)\n" st.Sample_cache.solves note;
  Printf.printf "points sampled:    %d\n" st.Sample_cache.points;
  Printf.printf "columns held:      %d\n" st.Sample_cache.columns;
  Printf.printf "batches:           %d\n" st.Sample_cache.batches;
  Printf.printf "factor/solve time: %.4f s / %.4f s\n" st.Sample_cache.factor_s
    st.Sample_cache.solve_s

(* In-band verification shared by reduce/adaptive: the full-model
   reference sweep is computed once per invocation (through the
   two-tier sweep engine) and every reported metric streams the reduced
   model against that same array. *)
let report_in_band ?workers sys rom ~w_hi =
  let omegas = Vec.linspace (w_hi /. 100.0) w_hi 40 in
  let href = Freq.sweep ?workers sys omegas in
  let st = Freq.compare_sweep ?workers rom omegas ~ref_:href in
  Printf.printf "worst in-band relative error: %.3e\n" (Freq.stream_max_rel_error st);
  Printf.printf "in-band rms error:            %.3e\n" (Freq.stream_rms_error st)

(* Synthesized correlated input class for --method correlated: square waves
   derived from one clock (dithered timing, fixed per-port amplitudes), the
   Section VI-C experiment's input model, with the clock period tied to the
   sampling band. *)
let correlated_inputs sys ~seed ~w_hi =
  let period = 2.0 *. Float.pi *. 10.0 /. w_hi in
  let bank =
    Pmtbr_signal.Waveform.dithered_square_bank ~rng:(Pmtbr_signal.Rng.create seed)
      ~ports:(Dss.inputs sys) ~period ~dither:0.1
  in
  let waves = Array.map (fun w t -> 1e-3 *. w t) bank in
  Pmtbr_signal.Waveform.sample_matrix waves ~t0:0.0 ~t1:(4.0 *. period) ~samples:400

(* --band with lo > 0 switches the Lyapunov solvers to the band-limited
   residual stop, over the same Bands sampling PMTBR uses. *)
let lyap_stop band =
  match band with
  | Some (lo, hi) when lo > 0.0 ->
      let bpts = Sampling.points (Sampling.Bands [ (lo, hi) ]) ~count:8 in
      Some (Lr_lyap.Band_residual (Array.map (fun p -> (p.Sampling.s, p.Sampling.weight)) bpts))
  | _ -> None

let run_reduce_inner circuit spice size ports seed meth partition max_part_states interface_tol
    order tol samples band workers stats adaptive draws export =
  let meth =
    match (meth, partition) with
    | M_pmtbr, Some _ -> M_hier
    | M_hier, _ -> M_hier
    | m, Some _ when m <> M_hier -> failwith "--partition only applies to --method hier"
    | m, _ -> m
  in
  if interface_tol <> None && meth <> M_hier then
    failwith "--interface-tol only applies to --method hier";
  let nl, source = resolve ~circuit ~spice ~size ~ports ~seed in
  let sys = Dss.of_netlist nl in
  let w_hi = band_of ~circuit:source ~band ~fallback:1e10 in
  let pts =
    match band with
    | Some (lo, hi) when lo > 0.0 -> Sampling.points (Sampling.Bands [ (lo, hi) ]) ~count:samples
    | _ -> Sampling.points (Sampling.Uniform { w_max = w_hi }) ~count:samples
  in
  let workers = workers_opt workers in
  let no_adaptive name = failwith (name ^ " has no adaptive cache pipeline (drop --adaptive)") in
  let no_stats name = failwith (name ^ " does not run through the sample cache (drop --stats)") in
  (* each arm yields the reduced model, the sample count actually consumed
     (when meaningful), and the cache counters (when the method runs
     through the pipeline) *)
  let rom, used, st =
    match meth with
    | M_pmtbr when adaptive ->
        let r, st = Pmtbr.reduce_adaptive_stats ?order ?tol ?workers sys pts in
        (r.Pmtbr.rom, Some (r.Pmtbr.samples, Array.length pts), Some st)
    | M_pmtbr when stats ->
        let r, st = Pmtbr.reduce_stats ?order ?tol ?workers sys pts in
        (r.Pmtbr.rom, None, Some st)
    | M_pmtbr -> ((Pmtbr.reduce ?order ?tol ?workers sys pts).Pmtbr.rom, None, None)
    | M_hier ->
        if adaptive then no_adaptive "hier";
        let t0 = Unix.gettimeofday () in
        let pt =
          match Option.value partition ~default:(P_k 4) with
          | P_k k ->
              if k > Dss.order sys then
                failwith
                  (Printf.sprintf
                     "--partition %d exceeds the circuit's %d states (at most one subdomain \
                      per state)"
                     k (Dss.order sys));
              Partition.split ~parts:k nl
          | P_auto -> Partition.split_auto ~max_states:max_part_states nl
        in
        let partition_wall = Unix.gettimeofday () -. t0 in
        let rom, hst =
          Hier_reduce.reduce_partitioned ?order ?tol ?interface_tol ?workers pt pts
        in
        if stats then begin
          Printf.printf "partitions:        %d (tree depth %d; interface states %d -> %d)\n"
            hst.Hier_reduce.parts hst.Hier_reduce.depth hst.Hier_reduce.interface
            hst.Hier_reduce.interface_kept;
          Array.iteri
            (fun l (cuts, sep) ->
              Printf.printf "  level %-2d         %d cut%s, %d separator state%s\n" l cuts
                (if cuts = 1 then "" else "s")
                sep
                (if sep = 1 then "" else "s"))
            (Partition.level_cuts pt);
          Printf.printf "subdomain orders:  %s\n"
            (String.concat " "
               (Array.to_list (Array.map string_of_int hst.Hier_reduce.sub_orders)));
          Printf.printf "shifted solves:    %d (per subdomain; no global factorization)\n"
            hst.Hier_reduce.solves;
          Printf.printf
            "stage walls:       partition %.4f s, sample+project %.4f s, recombine %.4f s, \
             compress %.4f s\n"
            partition_wall hst.Hier_reduce.sample_wall_s hst.Hier_reduce.recombine_wall_s
            hst.Hier_reduce.compress_wall_s;
          Printf.printf "subdomain wall:    %s s\n"
            (String.concat " "
               (Array.to_list (Array.map (Printf.sprintf "%.4f") hst.Hier_reduce.sub_wall_s)))
        end;
        (rom, None, None)
    | M_fs ->
        let lo, hi = match band with Some b -> b | None -> (0.0, w_hi) in
        let bands = [ Freq_selective.band ~lo ~hi ] in
        if adaptive then begin
          let r, st =
            Freq_selective.reduce_adaptive_stats ?order ?tol ?workers sys ~bands ~count:samples
          in
          (r.Pmtbr.rom, Some (r.Pmtbr.samples, Array.length pts), Some st)
        end
        else if stats then begin
          let r, st = Freq_selective.reduce_stats ?order ?tol ?workers sys ~bands ~count:samples in
          (r.Pmtbr.rom, None, Some st)
        end
        else
          ((Freq_selective.reduce ?order ?tol ?workers sys ~bands ~count:samples).Pmtbr.rom,
           None, None)
    | M_multipoint ->
        if adaptive then no_adaptive "multipoint";
        let r, st =
          Multipoint.reduce_stats ?workers sys (Sampling.spread_order pts)
            ~count:(max 1 (Option.value order ~default:10 / 2))
        in
        (r.Multipoint.rom, None, if stats then Some st else None)
    | M_cross when adaptive ->
        let r, st = Cross_gramian.reduce_adaptive_stats ?order ?workers sys pts in
        (r.Cross_gramian.rom, Some (r.Cross_gramian.samples, Array.length pts), Some st)
    | M_cross ->
        let r, st = Cross_gramian.reduce_cached_stats ?order ?workers sys pts in
        (r.Cross_gramian.rom, None, if stats then Some st else None)
    | M_correlated ->
        let inputs = correlated_inputs sys ~seed ~w_hi in
        if adaptive then begin
          let r, st =
            Input_correlated.reduce_adaptive_stats ?order ?tol ~seed ?workers sys ~inputs
              ~points:pts ~max_draws:draws
          in
          (r.Input_correlated.rom, Some (r.Input_correlated.samples, draws), Some st)
        end
        else begin
          let r, st =
            Input_correlated.reduce_stats ?order ?tol ~seed ?workers sys ~inputs ~points:pts
              ~draws
          in
          (r.Input_correlated.rom, None, if stats then Some st else None)
        end
    | M_prima ->
        if adaptive then no_adaptive "prima";
        if stats then no_stats "prima";
        ((Prima.reduce_to_order sys ~s0:(w_hi /. 20.0) ~order:(Option.value order ~default:10))
           .Prima.rom, None, None)
    | M_tbr ->
        if adaptive then no_adaptive "tbr";
        if stats then no_stats "tbr";
        ((Tbr.reduce_dss ?order ?tol sys).Tbr.rom, None, None)
    | M_tbr_lr ->
        if adaptive then no_adaptive "tbr-lr";
        let r, st = Tbr_lr.reduce_stats ?order ?tol ?stop:(lyap_stop band) ?workers sys in
        if stats then begin
          Printf.printf "symbolic analyses: %d\n" st.Tbr_lr.symbolic;
          Printf.printf "refactorizations:  %d (ADI shifts: %d)\n" st.Tbr_lr.refactorizations
            (Array.length st.Tbr_lr.shifts);
          Printf.printf "shifted solves:    %d (%d RHS columns)\n" st.Tbr_lr.solves
            st.Tbr_lr.col_solves;
          Printf.printf "gramian columns:   %d ctrl / %d obs (converged: %b / %b)\n"
            st.Tbr_lr.ctrl.Lr_lyap.columns st.Tbr_lr.obs.Lr_lyap.columns
            st.Tbr_lr.ctrl.Lr_lyap.converged st.Tbr_lr.obs.Lr_lyap.converged;
          Printf.printf "wall time:         %.4f s\n" st.Tbr_lr.wall_s
        end;
        (r.Tbr_lr.rom, None, None)
    | M_tbr_passive ->
        if adaptive then no_adaptive "tbr-passive";
        let inductors = Pmtbr_circuit.Netlist.inductor_count nl in
        let r, st =
          Tbr_passive.reduce_stats ?order ?tol ?stop:(lyap_stop band) ~inductors ?workers sys
        in
        if stats then begin
          Printf.printf "symbolic analyses: %d\n" st.Tbr_passive.symbolic;
          Printf.printf "refactorizations:  %d (ADI shifts: %d)\n"
            st.Tbr_passive.refactorizations
            (Array.length st.Tbr_passive.shifts);
          Printf.printf "shifted solves:    %d (%d RHS columns; one Gramian)\n"
            st.Tbr_passive.solves st.Tbr_passive.col_solves;
          Printf.printf "gramian columns:   %d (converged: %b)\n"
            st.Tbr_passive.gramian.Lr_lyap.columns st.Tbr_passive.gramian.Lr_lyap.converged;
          Printf.printf "wall time:         %.4f s\n" st.Tbr_passive.wall_s
        end;
        (r.Tbr_passive.rom, None, None)
    | M_two_step ->
        if adaptive then no_adaptive "two-step";
        if stats then no_stats "two-step";
        let q = Option.value order ~default:10 in
        ((Two_step.reduce sys ~s0:(w_hi /. 20.0) ~intermediate:(3 * q) ~order:q ()).Two_step.rom,
         None, None)
    | M_pod ->
        if adaptive then no_adaptive "pod";
        if stats then no_stats "pod";
        let rise = 10.0 /. w_hi in
        let u t =
          Array.init (Dss.inputs sys) (fun _ -> Float.min 1e-3 (Float.max 0.0 (1e-3 *. t /. rise)))
        in
        ((Time_sampled.reduce ?order ?tol sys ~u ~t1:(200.0 *. rise) ~dt:rise ~snapshots:150)
           .Time_sampled.rom, None, None)
  in
  Printf.printf "reduced: %d -> %d states\n" (Dss.order sys) (Dss.order rom);
  Option.iter
    (fun (n, offered) -> Printf.printf "samples consumed:  %d of %d offered\n" n offered)
    used;
  if stats then Option.iter print_stats st;
  report_in_band ?workers sys rom ~w_hi;
  (* --export FILE: realize the ROM as a netlist, write it, and verify the
     roundtrip — the file re-parsed, stamped and swept must reproduce the
     in-memory ROM *)
  Option.iter
    (fun path ->
      let ir =
        try
          Pmtbr_circuit.Synth.realize ?workers ~e:(Dss.e_dense rom) ~a:(Dss.a_dense rom)
            ~b:(Dss.b_matrix rom) ~c:(Dss.c_matrix rom) ()
        with Pmtbr_circuit.Synth.Unrealizable msg ->
          failwith ("export: ROM is not realizable: " ^ msg ^ " (use --method tbr-passive)")
      in
      let text = Pmtbr_circuit.Spice_ir.render ir in
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc text);
      let back = Dss.of_netlist (Pmtbr_circuit.Spice.netlist (Pmtbr_circuit.Spice.parse_file path)) in
      let omegas = Vec.linspace (w_hi /. 100.0) w_hi 40 in
      let href = Freq.sweep ?workers rom omegas in
      let drift =
        Freq.stream_max_rel_error (Freq.compare_sweep ?workers back omegas ~ref_:href)
      in
      Printf.printf "exported %d states to %s (roundtrip drift %.3e)\n" (Dss.order rom) path
        drift)
    export

let export_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "export" ] ~docv:"FILE"
        ~doc:
          "Synthesize the reduced model back into an R/C netlist, write it to FILE, and \
           verify the roundtrip (re-parse, stamp, sweep against the in-memory model).  \
           Needs a realizable (reciprocal, symmetric) reduced model — the tbr-passive \
           method guarantees one.")

(* usage errors (bad flag combinations, partition > states, server-side
   failures) leave through Cmdliner's error channel instead of an
   uncaught exception *)
let run_reduce circuit spice size ports seed meth partition max_part_states interface_tol order
    tol samples band workers stats adaptive draws export =
  try
    Ok
      (run_reduce_inner circuit spice size ports seed meth partition max_part_states
         interface_tol order tol samples band workers stats adaptive draws export)
  with Failure msg -> Error msg

let reduce_cmd =
  let doc = "Reduce a circuit model and report the in-band error." in
  Cmd.v (Cmd.info "reduce" ~doc)
    Term.(
      term_result'
        (const run_reduce $ circuit_arg $ spice_arg $ size_arg $ ports_arg $ seed_arg
        $ method_arg $ partition_arg $ max_part_states_arg $ interface_tol_arg $ order_arg
        $ tol_arg $ samples_arg $ band_arg $ workers_arg $ stats_arg $ adaptive_arg $ draws_arg
        $ export_file_arg))

(* ------------------------------------------------------------------ *)
(* adaptive                                                            *)
(* ------------------------------------------------------------------ *)

type adaptive_monitor = Mon_svd | Mon_rrqr

let monitor_arg =
  let doc = "Per-batch order monitor (svd, rrqr)." in
  Arg.(
    value
    & opt (enum [ ("svd", Mon_svd); ("rrqr", Mon_rrqr) ]) Mon_svd
    & info [ "monitor" ] ~docv:"MONITOR" ~doc)

let batch_arg =
  Arg.(value & opt int 8 & info [ "batch" ] ~docv:"B" ~doc:"Points consumed per batch.")

let rebuild_arg =
  Arg.(
    value
    & flag
    & info [ "rebuild" ]
        ~doc:
          "Use the from-scratch reference loop (every batch re-solves all consumed shifts) \
           instead of the incremental sample cache.  Results are bitwise-identical; only the \
           solve counters and wall time differ.")

let run_adaptive circuit spice size ports seed monitor order tol batch rebuild samples band
    workers =
  let nl, source = resolve ~circuit ~spice ~size ~ports ~seed in
  let sys = Dss.of_netlist nl in
  let w_hi = band_of ~circuit:source ~band ~fallback:1e10 in
  let pts =
    match band with
    | Some (lo, hi) when lo > 0.0 -> Sampling.points (Sampling.Bands [ (lo, hi) ]) ~count:samples
    | _ -> Sampling.points (Sampling.Uniform { w_max = w_hi }) ~count:samples
  in
  let workers = workers_opt workers in
  let result, st =
    match monitor with
    | Mon_svd -> Pmtbr.reduce_adaptive_stats ~rebuild ?order ?tol ~batch ?workers sys pts
    | Mon_rrqr -> Pmtbr.reduce_adaptive_rrqr_stats ~rebuild ?order ?tol ~batch ?workers sys pts
  in
  Printf.printf "reduced: %d -> %d states\n" (Dss.order sys) (Dss.order result.Pmtbr.rom);
  Printf.printf "samples consumed:  %d of %d offered\n" result.Pmtbr.samples (Array.length pts);
  Printf.printf "shift solves:      %d%s\n" st.Sample_cache.solves
    (if rebuild then " (from-scratch reference)" else " (each shift solved once)");
  Printf.printf "columns held:      %d\n" st.Sample_cache.columns;
  Printf.printf "batches:           %d\n" st.Sample_cache.batches;
  Printf.printf "factor/solve time: %.4f s / %.4f s\n" st.Sample_cache.factor_s
    st.Sample_cache.solve_s;
  Array.iteri
    (fun i w -> Printf.printf "batch %-2d wall:     %.4f s\n" (i + 1) w)
    st.Sample_cache.batch_wall_s;
  report_in_band ?workers sys result.Pmtbr.rom ~w_hi

let adaptive_cmd =
  let doc =
    "Reduce with on-the-fly order control and report the incremental-sampling counters."
  in
  Cmd.v (Cmd.info "adaptive" ~doc)
    Term.(
      const run_adaptive $ circuit_arg $ spice_arg $ size_arg $ ports_arg $ seed_arg
      $ monitor_arg $ order_arg $ tol_arg $ batch_arg $ rebuild_arg $ samples_arg $ band_arg
      $ workers_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let npoints_arg =
  Arg.(value & opt int 40 & info [ "points" ] ~docv:"N" ~doc:"Number of frequency points.")

let run_sweep circuit spice size ports seed npoints band workers =
  let nl, source = resolve ~circuit ~spice ~size ~ports ~seed in
  let sys = Dss.of_netlist nl in
  let w_hi = band_of ~circuit:source ~band ~fallback:1e10 in
  let w_lo = match band with Some (lo, _) -> Float.max lo (w_hi /. 1000.0) | None -> w_hi /. 1000.0 in
  let workers = workers_opt workers in
  let omegas = Vec.linspace w_lo w_hi npoints in
  print_endline "omega_rad_s\tf_GHz\tmag_H11\tphase_rad";
  if Array.length omegas > 0 then begin
    (* one plan for the whole grid: symbolic analysis (or Hessenberg
       reduction) paid once, points fanned across the pool, rows
       streamed out in grid order *)
    let plan = Sweep_engine.prepare ~template:{ Complex.re = 0.0; im = omegas.(0) } sys in
    Sweep_engine.iteri ?workers plan omegas ~f:(fun k h ->
        let h = Cmat.get h 0 0 in
        Printf.printf "%.5e\t%.4f\t%.5e\t%.4f\n" omegas.(k)
          (omegas.(k) /. (2.0 *. Float.pi *. 1e9))
          (Complex.norm h) (Complex.arg h))
  end

let sweep_cmd =
  let doc = "Print the port-1 frequency response of a circuit model." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run_sweep $ circuit_arg $ spice_arg $ size_arg $ ports_arg $ seed_arg $ npoints_arg
      $ band_arg $ workers_arg)

(* ------------------------------------------------------------------ *)
(* export                                                              *)
(* ------------------------------------------------------------------ *)

let run_export circuit size ports seed output =
  match circuit with
  | None -> failwith "--circuit is required for export"
  | Some c -> (
      let nl = build_netlist c ~size ~ports ~seed in
      match output with
      | Some path -> Pmtbr_circuit.Spice.write_file path nl
      | None -> print_string (Pmtbr_circuit.Spice.to_string nl))

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")

let export_cmd =
  let doc = "Export a generated circuit as a SPICE-dialect netlist." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run_export $ circuit_arg $ size_arg $ ports_arg $ seed_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* serve / batch                                                       *)
(* ------------------------------------------------------------------ *)

module Sproto = Pmtbr_serve.Protocol
module Sserver = Pmtbr_serve.Server
module Sclient = Pmtbr_serve.Client

let socket_arg =
  Arg.(
    value
    & opt string ".pmtbr.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the reduction daemon.")

let run_serve socket workers job_workers max_cost_mb =
  let workers = max 1 workers in
  let config =
    {
      (Sserver.default_config ~socket_path:socket) with
      Sserver.workers;
      job_workers = max 1 job_workers;
      max_cost = max 1 max_cost_mb * 1024 * 1024;
    }
  in
  Printf.printf "pmtbr serve: listening on %s (%d connection workers)\n%!" socket workers;
  Sserver.run config;
  Printf.printf "pmtbr serve: stopped\n%!"

let serve_cmd =
  let doc = "Run the reduction daemon (jobs over a Unix socket, content-addressed store)." in
  let serve_workers =
    Arg.(
      value
      & opt int 2
      & info [ "j"; "workers" ] ~docv:"W"
          ~doc:
            "Connection-handling worker domains.  Concurrent jobs are scheduled across them; \
             every job still produces a bitwise-identical model for any worker count.")
  in
  let job_workers =
    Arg.(
      value
      & opt int 1
      & info [ "job-workers" ] ~docv:"W"
          ~doc:"Solver/dense-kernel domains used inside each job (results are invariant).")
  in
  let max_cost =
    Arg.(
      value
      & opt int 256
      & info [ "store-mb" ] ~docv:"MB" ~doc:"Approximate store budget in MiB (LRU-evicted).")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run_serve $ socket_arg $ serve_workers $ job_workers $ max_cost)

let serve_method_arg =
  let doc =
    Printf.sprintf "Reduction method served by the daemon (%s)."
      (String.concat ", " (List.map fst Sproto.meth_names))
  in
  Arg.(value & opt (enum Sproto.meth_names) Sproto.Pmtbr & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let read_text_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let require_ok what = function
  | Ok v -> v
  | Error msg -> failwith (what ^ ": " ^ msg)

let print_fields r = List.iter (fun (k, v) -> Printf.printf "%-14s %s\n" k v) r.Sproto.fields

(* One round trip that fails loudly on transport errors and surfaces the
   server-side error message verbatim. *)
let roundtrip conn req =
  let r = require_ok "request failed" (Sclient.request conn req) in
  (match r.Sproto.status with Ok () -> () | Error msg -> failwith ("server error: " ^ msg));
  r

let run_batch_inner socket ping server_stats shutdown circuit spice size ports seed meth
    partition max_part_states interface_tol band tol order samples repeat assert_warm export_out
    =
  (* --partition with the default method implies hier, mirroring reduce *)
  let meth =
    match (meth, partition) with Sproto.Pmtbr, Some _ -> Sproto.Hier | m, _ -> m
  in
  let partition =
    Option.map (function P_auto -> Sproto.Auto | P_k k -> Sproto.Parts k) partition
  in
  (* the budget only rides along when auto dissection asked for it — the
     protocol rejects max-part-states on a fixed-count job *)
  let max_part_states = if partition = Some Sproto.Auto then Some max_part_states else None in
  Sclient.with_connection socket (fun conn ->
      if ping then print_fields (roundtrip conn Sproto.Ping)
      else if server_stats then print_fields (roundtrip conn Sproto.Stats)
      else if shutdown then print_fields (roundtrip conn Sproto.Shutdown)
      else begin
        let netlist =
          match (circuit, spice) with
          | Some c, None -> Pmtbr_circuit.Spice.to_string (build_netlist c ~size ~ports ~seed)
          | None, Some path -> read_text_file path
          | Some _, Some _ -> failwith "give either --circuit or --spice, not both"
          | None, None -> failwith "one of --circuit or --spice is required"
        in
        let band =
          match band with
          | Some b -> require_ok "bad band" (Sproto.validate_band b)
          | None -> failwith "--band LO:HI is required for batch jobs"
        in
        let job =
          Sproto.Reduce
            { Sproto.meth; band; tol; order; samples; partition; max_part_states;
              interface_tol; export = export_out <> None; netlist }
        in
        let repeat = max 1 repeat in
        let walls = Array.make repeat 0.0 in
        let digest = ref "" in
        for i = 0 to repeat - 1 do
          let r = roundtrip conn job in
          let get k = Option.value (Sproto.field r k) ~default:"?" in
          (match export_out with
          | Some path when i = 0 ->
              if r.Sproto.body = "" then failwith "server returned no netlist body for --export";
              let oc = open_out_bin path in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_string oc r.Sproto.body);
              Printf.printf "wrote synthesized ROM netlist to %s (%d bytes)\n" path
                (String.length r.Sproto.body)
          | _ -> ());
          walls.(i) <- float_of_string (get "wall_us") /. 1e6;
          (* every repeat must return the identical model: the store's
             bitwise-determinism contract, checked end to end *)
          let d = get "digest" in
          if !digest = "" then digest := d
          else if d <> !digest then
            failwith (Printf.sprintf "digest drift on repeat %d: %s <> %s" (i + 1) d !digest);
          Printf.printf "job %-2d tier=%-12s states=%s order=%s solves=%s wall=%.6fs\n" (i + 1)
            (get "tier") (get "states") (get "order") (get "solves") walls.(i)
        done;
        if repeat > 1 then begin
          let warm = Array.sub walls 1 (repeat - 1) in
          Array.sort compare warm;
          let speedup = walls.(0) /. Float.max warm.(0) 1e-9 in
          Printf.printf "cold %.6fs, best warm %.6fs: %.1fx\n" walls.(0) warm.(0) speedup;
          match assert_warm with
          | Some want when speedup < want ->
              failwith (Printf.sprintf "warm speedup %.1fx below required %.1fx" speedup want)
          | _ -> ()
        end
        else if assert_warm <> None then
          failwith "--assert-warm-speedup needs --repeat >= 2"
      end)

let batch_cmd =
  let doc = "Submit reduction jobs to a running daemon (or ping / stats / shutdown it)." in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Just ping the daemon.") in
  let stats = Arg.(value & flag & info [ "server-stats" ] ~doc:"Print the store counters.") in
  let shutdown = Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to stop.") in
  let repeat =
    Arg.(
      value
      & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Submit the same job N times; repeats must return a bitwise-identical model \
             (digests are compared) and warm timings are reported against the first run.")
  in
  let assert_warm =
    Arg.(
      value
      & opt (some float) None
      & info [ "assert-warm-speedup" ] ~docv:"X"
          ~doc:"Fail unless the best warm repeat is at least X times faster than the first run.")
  in
  let export_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"FILE"
          ~doc:
            "Ask the daemon to synthesize the reduced model back into a netlist and write \
             the response body to FILE (first repeat only).")
  in
  let run_batch socket ping server_stats shutdown circuit spice size ports seed meth partition
      max_part_states interface_tol band tol order samples repeat assert_warm export_out =
    try
      Ok
        (run_batch_inner socket ping server_stats shutdown circuit spice size ports seed meth
           partition max_part_states interface_tol band tol order samples repeat assert_warm
           export_out)
    with Failure msg -> Error msg
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      term_result'
        (const run_batch $ socket_arg $ ping $ stats $ shutdown $ circuit_arg $ spice_arg
        $ size_arg $ ports_arg $ seed_arg $ serve_method_arg $ partition_arg
        $ max_part_states_arg $ interface_tol_arg $ band_arg $ tol_arg $ order_arg $ samples_arg
        $ repeat $ assert_warm $ export_out))

(* ------------------------------------------------------------------ *)

let () =
  let doc = "Poor Man's TBR: model order reduction for circuit parasitics" in
  let info = Cmd.info "pmtbr" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ info_cmd; hsv_cmd; reduce_cmd; adaptive_cmd; sweep_cmd; export_cmd; serve_cmd;
            batch_cmd ]))
